// Public API: sparse Cholesky factorization with block fan-out analysis.
//
// Typical use (see examples/quickstart.cpp):
//
//   spc::SymSparse a = spc::make_grid2d(64, 64);
//   auto chol = spc::SparseCholesky::analyze(a);        // order + symbolic
//   chol.factorize();                                   // numeric L
//   std::vector<double> x = chol.solve(b);              // A x = b
//
//   // Parallel mapping analysis on a simulated Paragon:
//   auto plan = chol.plan_parallel(64, spc::RemapHeuristic::kIncreasingDepth,
//                                  spc::RemapHeuristic::kCyclic);
//   spc::SimResult r = chol.simulate(plan);
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "blocks/block_structure.hpp"
#include "blocks/blocking.hpp"
#include "blocks/domains.hpp"
#include "blocks/task_graph.hpp"
#include "check/check.hpp"
#include "factor/numeric_factor.hpp"
#include "factor/parallel_solve.hpp"
#include "graph/graph.hpp"
#include "mapping/balance.hpp"
#include "mapping/block_map.hpp"
#include "mapping/heuristics.hpp"
#include "sim/cost_model.hpp"
#include "sim/fanout_sim.hpp"
#include "sim/machine.hpp"
#include "support/governor.hpp"
#include "support/types.hpp"
#include "symbolic/amalgamate.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace spc {

struct ParallelWorkspace;  // factor/parallel_factor.hpp

struct SolverOptions {
  enum class Ordering {
    kMmd,      // multiple minimum degree (default; the paper's choice for
               // irregular problems)
    kAmd,      // approximate minimum degree (cheaper updates, similar fill)
    kNd,       // general nested dissection with BFS separators
    kNatural,  // keep the given order (dense problems, pre-ordered input)
  };
  Ordering ordering = Ordering::kMmd;
  idx block_size = 48;  // the paper's B (and kSupernode's near-root width)
  // Blocking policy (blocks/blocking.hpp): kUniform cuts every supernode at
  // block_size (the historical partition, bit-for-bit); kSupernode derives
  // irregular per-supernode widths from the elimination-tree structure, up
  // to block_cap columns on the dense bottom-of-tree supernodes. See
  // docs/BLOCKING.md.
  BlockingPolicy blocking = BlockingPolicy::kUniform;
  idx block_cap = 160;
  bool amalgamate = true;
  AmalgamationOptions amalgamation;

  // The assembled blocking configuration analyze() hands to make_blocking.
  BlockingOptions blocking_options() const {
    BlockingOptions b;
    b.policy = blocking;
    b.block_size = block_size;
    b.block_cap = block_cap;
    return b;
  }

  // Pivot handling for the numeric phase (factor/numeric_factor.hpp):
  // kStrict throws Error(kNotPositiveDefinite) at the first failing pivot;
  // kPerturb boosts failing pivots to pivot_delta * max|diag(A)| and
  // records them in factorize_info(). See docs/ROBUSTNESS.md.
  PivotPolicy pivot_policy = PivotPolicy::kStrict;
  double pivot_delta = kDefaultPivotDelta;

  // Numeric precision of factorize() (factor/fp32_factor.hpp). kFp32Refine
  // computes the factor in fp32 (up to ~2x kernel throughput), promotes it
  // to double, and pairs it with fp64 iterative refinement in the solve
  // paths, recovering fp64-quality solutions for reasonably conditioned
  // systems. If the fp32 pass breaks down under kStrict — fp32 rounding can
  // push a barely-SPD pivot negative — factorize() automatically retries in
  // fp64 and sets factorize_info().fp32_fallback (docs/ROBUSTNESS.md).
  // factorize_parallel() always computes in fp64.
  enum class Precision {
    kFp64,        // standard double-precision factorization (default)
    kFp32Refine,  // fp32 factorization + fp64 iterative refinement
  };
  Precision precision = Precision::kFp64;

  // --- Resource governance (docs/ROBUSTNESS.md §7) -------------------------
  // Hard cap in bytes on governed allocations (factor arena, execution
  // workspaces, per-worker scratch, fp32 arena, RHS staging). 0 = unlimited:
  // accounting still runs, so memory_budget()->peak_bytes() measures a
  // workload without capping it. A breach throws Error(kResourceExhausted)
  // with the full accounting in its ErrorContext.
  i64 mem_budget_bytes = 0;
  // Per-request wall-clock limit in seconds, armed at the start of each
  // factorize/solve call; < 0 = no deadline. A limit of exactly 0 is
  // armed-and-already-expired (deterministic for tests). Breaches throw
  // Error(kDeadlineExceeded).
  double deadline_s = -1.0;
  // Bounds and switches for factorize_governed()'s degradation ladder.
  governor::RetryPolicy retry{};
};

// A processor count + block mapping + domain decomposition, with the load
// balance statistics the paper's analysis is built on.
struct ParallelPlan {
  BlockMap map;
  DomainDecomposition domains;
  RootWork root_work;
  BalanceStats balance;
};

class SparseCholesky {
 public:
  // Symbolic phase: ordering, elimination tree, supernodes (+amalgamation),
  // block partition, block structure, task graph.
  static SparseCholesky analyze(const SymSparse& a, const SolverOptions& opt = {});
  // Same, but with a caller-provided fill-reducing ordering (new->old), e.g.
  // nested dissection for grid problems.
  static SparseCholesky analyze_ordered(const SymSparse& a, std::vector<idx> perm,
                                        const SolverOptions& opt = {});

  // Numeric factorization (throws spc::Error if A is not SPD).
  void factorize();
  // Same factor computed by the shared-memory data-driven executor (real
  // std::thread workers over the BFAC/BDIV/BMOD task graph; see
  // factor/parallel_factor.hpp). 0 threads = hardware concurrency. The
  // execution workspace (priorities, arena layout, counters, scratch) is
  // built on the first call and cached, so repeated factorizations of the
  // same analyzed structure re-plan and allocate nothing.
  void factorize_parallel(int num_threads = 0);
  bool factorized() const { return factor_.has_value(); }

  // Governed factorization: runs the configured engine under the solver's
  // memory budget and a freshly armed deadline, walking an explicit
  // degradation ladder on failure (docs/ROBUSTNESS.md §7):
  //   fp32 breakdown          -> refactorize in fp64        (kFp32ToFp64)
  //   memory-budget breach    -> halve block_cap, re-block  (kReducedBlockCap)
  //                           -> uniform blocking, re-block (kSupernodeToUniform)
  //                           -> serial engine              (kParallelToSerial)
  //   transient fault         -> one same-config retry      (kRetryTransient)
  //                           -> serial engine              (kParallelToSerial)
  // Cancellation, malformed input, deadline breaches, and fp64 SPD failures
  // are never retried. Every rung taken is recorded (in order) in
  // factorize_info().degrade_path, the attempt count is bounded by
  // options().retry.max_attempts, and a degraded configuration sticks:
  // options() reflects the rungs taken. num_threads == 1 starts serial;
  // anything else starts on the parallel executor. Before a parallel
  // attempt, estimate_factor_bytes() gates admission so an infeasible
  // request degrades without wasting numeric work.
  void factorize_governed(int num_threads = 0);

  // Predicted governed bytes of factorize_parallel(num_threads) for the
  // current plan (factor/parallel_factor.hpp). 0 threads = hardware
  // concurrency.
  i64 estimate_factor_bytes(int num_threads = 0) const;

  // The solver's byte accounting, created at analyze() time (account-only
  // unless options().mem_budget_bytes caps it). All governed allocations of
  // this solver charge here; in_use_bytes() returns to the cached
  // workspaces' steady-state footprint after each run and to 0 when the
  // solver and its workspaces die.
  const std::shared_ptr<governor::MemoryBudget>& memory_budget() const {
    return budget_;
  }

  // Perturbation/breakdown accounting of the most recent factorize() /
  // factorize_parallel() call (zeroed before each run). Under kPerturb,
  // perturbed_pivots / perturbed_cols report the boosted pivots; under
  // kStrict the call throws instead and breakdown_col carries the failing
  // column in the thrown Error's context.
  const FactorizeInfo& factorize_info() const { return info_; }

  // Solves A x = b in the ORIGINAL row/column order of the input matrix.
  std::vector<double> solve(const std::vector<double>& b) const;

  // Same, routed through the panel/parallel solve path (factor/
  // parallel_solve.hpp): opt.threads == 1 runs the serial panel sweeps,
  // >= 2 the DAG executor. The solve workspace (DAG, priorities, scratch)
  // is built on the first call and cached, so repeated solves allocate
  // nothing. Perturbed-pivot refinement (see below) rides the same path.
  std::vector<double> solve(const std::vector<double>& b,
                            const SolveOptions& opt) const;

  // Multi-RHS solve in place: B is num_rows() x nrhs, column-major, in the
  // ORIGINAL row order; processed in panels of opt.nrhs_block columns so
  // the factor is walked once per panel. Uses the same cached workspace.
  void solve_multi(DenseMatrix& b, const SolveOptions& opt = {}) const;

  // Solve followed by iterative refinement until the correction's inf-norm
  // drops below `tol` or `max_iters` steps. For well-conditioned SPD systems
  // one step already reaches working accuracy; the option matters for the
  // ill-conditioned stiffness matrices in the BCSSTK class.
  std::vector<double> solve_refined(const std::vector<double>& b, int max_iters = 3,
                                    double tol = 1e-14) const;

  // solve_refined with the solves routed through the panel/parallel path.
  std::vector<double> solve_refined(const std::vector<double>& b,
                                    const SolveOptions& opt, int max_iters = 3,
                                    double tol = 1e-14) const;

  // --- Introspection -------------------------------------------------------
  idx num_rows() const { return a_perm_.num_rows(); }
  const SolverOptions& options() const { return opt_; }
  const std::vector<idx>& ordering() const { return perm_; }  // new->old
  const SymSparse& permuted_matrix() const { return a_perm_; }
  const std::vector<idx>& etree_parent() const { return parent_; }
  const SymbolicFactor& symbolic() const { return sf_; }
  const BlockStructure& structure() const { return bs_; }
  const TaskGraph& task_graph() const { return tg_; }
  const BlockFactor& factor() const;

  i64 factor_nnz_exact() const { return factor_nnz_; }     // NZ in L (Table 1)
  i64 factor_flops_exact() const { return factor_flops_; } // "Ops to factor"

  // --- Parallel analysis ---------------------------------------------------
  // Builds a 2-D mapping for `num_procs` processors with the given row and
  // column remapping heuristics; domains per the paper's §2.3 when enabled.
  ParallelPlan plan_parallel(idx num_procs, RemapHeuristic row_h,
                             RemapHeuristic col_h, bool use_domains = true) const;
  // Plan from an explicit map (for custom mappings, e.g. subcube columns).
  ParallelPlan plan_from_map(BlockMap map, bool use_domains = true) const;

  // Simulated block fan-out factorization on the Paragon-like machine model.
  // `policy` selects the paper's data-driven scheduling or the priority
  // scheduling it proposes as future work (see sim/fanout_sim.hpp).
  SimResult simulate(const ParallelPlan& plan, const CostModel& cm = {},
                     SchedulingPolicy policy = SchedulingPolicy::kDataDriven,
                     SimTrace* trace = nullptr) const;

  // --- Invariant validation (src/check/) -----------------------------------
  // Runs every analyze-phase validator: matrix canonical form, elimination
  // tree, postorder, column counts, supernode partition, symbolic factor,
  // block structure, task graph, and a symbolic execution of the schedule.
  // With SPC_CHECK_INVARIANTS=1 in the environment, analyze() and
  // analyze_ordered() run this automatically and throw on any error.
  check::Report check_analysis() const;
  // Validates a plan's mapping and domains, and recomputes the work model
  // and balance statistics from scratch against the reported values. Runs
  // automatically in plan_parallel()/plan_from_map() under
  // SPC_CHECK_INVARIANTS=1.
  check::Report check_plan(const ParallelPlan& plan) const;

 private:
  SparseCholesky() = default;

  // One ladder attempt: parallel executor or the serial engine selected by
  // options().precision, under the given deadline and the solver's budget.
  void factorize_attempt(bool parallel, int num_threads,
                         const governor::Deadline* deadline);
  // Rebuilds bs_/tg_ from the cached symbolic factorization after a ladder
  // rung changed the blocking options; drops the factor and workspaces.
  void reblock();

  std::vector<idx> perm_;      // final new->old (fill order composed with postorder)
  SymSparse a_perm_;
  std::vector<idx> parent_;    // column etree of a_perm_
  SymbolicFactor sf_;
  BlockStructure bs_;
  TaskGraph tg_;
  i64 factor_nnz_ = 0;
  i64 factor_flops_ = 0;
  SolverOptions opt_;
  FactorizeInfo info_;
  std::optional<BlockFactor> factor_;
  // Cached parallel execution state; (re)built lazily by factorize_parallel
  // whenever it does not match the current bs_/tg_ addresses (e.g. after the
  // object was copied or moved).
  std::shared_ptr<ParallelWorkspace> pws_;
  // Cached solve workspace, same lifecycle; mutable because solve() is
  // const while the workspace's counters/scratch are per-run state.
  SolveWorkspace& solve_workspace() const;
  mutable std::shared_ptr<SolveWorkspace> sws_;
  // Shared with cached workspaces and arena deleters, so accounting outlives
  // the facade if a workspace does.
  std::shared_ptr<governor::MemoryBudget> budget_;
};

// Convenience one-shot solve.
std::vector<double> solve_spd(const SymSparse& a, const std::vector<double>& b,
                              const SolverOptions& opt = {});

}  // namespace spc
