#include "symbolic/supernode.hpp"

#include "support/error.hpp"

namespace spc {

void SupernodePartition::finish() {
  SPC_CHECK(!first_col.empty() && first_col.front() == 0,
            "SupernodePartition: first_col must start at 0");
  for (std::size_t s = 0; s + 1 < first_col.size(); ++s) {
    SPC_CHECK(first_col[s] < first_col[s + 1],
              "SupernodePartition: empty supernode");
  }
  sn_of_col.assign(static_cast<std::size_t>(first_col.back()), 0);
  for (idx s = 0; s < count(); ++s) {
    for (idx c = first_col[s]; c < first_col[s + 1]; ++c) {
      sn_of_col[static_cast<std::size_t>(c)] = s;
    }
  }
}

SupernodePartition find_supernodes(const std::vector<idx>& parent,
                                   const std::vector<i64>& counts) {
  SPC_CHECK(parent.size() == counts.size(), "find_supernodes: size mismatch");
  const idx n = static_cast<idx>(parent.size());
  SupernodePartition sn;
  sn.first_col.push_back(0);
  for (idx j = 1; j < n; ++j) {
    const bool extends = parent[static_cast<std::size_t>(j - 1)] == j &&
                         counts[static_cast<std::size_t>(j - 1)] ==
                             counts[static_cast<std::size_t>(j)] + 1;
    if (!extends) sn.first_col.push_back(j);
  }
  if (n > 0) sn.first_col.push_back(n);
  sn.finish();
  return sn;
}

std::vector<idx> supernodal_etree(const SupernodePartition& sn,
                                  const std::vector<idx>& parent) {
  std::vector<idx> sparent(static_cast<std::size_t>(sn.count()), kNone);
  for (idx s = 0; s < sn.count(); ++s) {
    const idx last = sn.first_col[s + 1] - 1;
    const idx p = parent[static_cast<std::size_t>(last)];
    if (p != kNone) {
      sparent[static_cast<std::size_t>(s)] = sn.sn_of_col[static_cast<std::size_t>(p)];
      SPC_CHECK(sparent[static_cast<std::size_t>(s)] > s,
                "supernodal_etree: parent supernode must follow child");
    }
  }
  return sparent;
}

}  // namespace spc
