#include "symbolic/etree.hpp"

#include <algorithm>

#include "graph/permutation.hpp"
#include "support/error.hpp"

namespace spc {

void lower_row_structure(const SymSparse& a, std::vector<i64>& rptr,
                         std::vector<idx>& rcol) {
  const idx n = a.num_rows();
  const auto& ptr = a.col_ptr();
  const auto& row = a.row_idx();
  rptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::size_t e = 0; e < row.size(); ++e) ++rptr[static_cast<std::size_t>(row[e]) + 1];
  // Subtract diagonals (entry (c,c) exists for each column).
  for (idx c = 0; c < n; ++c) --rptr[static_cast<std::size_t>(c) + 1];
  for (idx i = 0; i < n; ++i) rptr[static_cast<std::size_t>(i) + 1] += rptr[static_cast<std::size_t>(i)];
  rcol.resize(static_cast<std::size_t>(rptr[static_cast<std::size_t>(n)]));
  std::vector<i64> cursor(rptr.begin(), rptr.end() - 1);
  for (idx c = 0; c < n; ++c) {
    for (i64 e = ptr[static_cast<std::size_t>(c)] + 1; e < ptr[static_cast<std::size_t>(c) + 1]; ++e) {
      rcol[static_cast<std::size_t>(cursor[static_cast<std::size_t>(row[static_cast<std::size_t>(e)])]++)] = c;
    }
  }
}

std::vector<idx> elimination_tree(const SymSparse& a) {
  const idx n = a.num_rows();
  std::vector<idx> parent(static_cast<std::size_t>(n), kNone);
  std::vector<idx> ancestor(static_cast<std::size_t>(n), kNone);
  // Liu's algorithm with path compression, consuming rows of the lower
  // triangle in increasing row order.
  std::vector<i64> rptr;
  std::vector<idx> rcol;
  lower_row_structure(a, rptr, rcol);

  for (idx i = 0; i < n; ++i) {
    for (i64 e = rptr[static_cast<std::size_t>(i)]; e < rptr[static_cast<std::size_t>(i) + 1]; ++e) {
      idx j = rcol[static_cast<std::size_t>(e)];
      while (ancestor[static_cast<std::size_t>(j)] != kNone &&
             ancestor[static_cast<std::size_t>(j)] != i) {
        const idx next = ancestor[static_cast<std::size_t>(j)];
        ancestor[static_cast<std::size_t>(j)] = i;
        j = next;
      }
      if (ancestor[static_cast<std::size_t>(j)] == kNone) {
        ancestor[static_cast<std::size_t>(j)] = i;
        parent[static_cast<std::size_t>(j)] = i;
      }
    }
  }
  return parent;
}

std::vector<idx> etree_postorder(const std::vector<idx>& parent) {
  const idx n = static_cast<idx>(parent.size());
  // Children lists, preserving ascending child order for determinism.
  std::vector<idx> head(static_cast<std::size_t>(n), kNone);
  std::vector<idx> next(static_cast<std::size_t>(n), kNone);
  std::vector<idx> roots;
  for (idx v = n - 1; v >= 0; --v) {
    const idx p = parent[static_cast<std::size_t>(v)];
    if (p == kNone) {
      roots.push_back(v);
    } else {
      SPC_CHECK(p > v, "etree_postorder: parent must be greater than child");
      next[static_cast<std::size_t>(v)] = head[static_cast<std::size_t>(p)];
      head[static_cast<std::size_t>(p)] = v;
    }
  }
  std::reverse(roots.begin(), roots.end());

  std::vector<idx> post;
  post.reserve(static_cast<std::size_t>(n));
  std::vector<std::pair<idx, idx>> stack;  // (vertex, next child to visit)
  for (idx r : roots) {
    stack.emplace_back(r, head[static_cast<std::size_t>(r)]);
    while (!stack.empty()) {
      auto& [v, child] = stack.back();
      if (child == kNone) {
        post.push_back(v);
        stack.pop_back();
      } else {
        const idx c = child;
        child = next[static_cast<std::size_t>(c)];
        stack.emplace_back(c, head[static_cast<std::size_t>(c)]);
      }
    }
  }
  SPC_CHECK(static_cast<idx>(post.size()) == n, "etree_postorder: forest has a cycle");
  return post;
}

std::vector<idx> etree_depth(const std::vector<idx>& parent) {
  const idx n = static_cast<idx>(parent.size());
  std::vector<idx> depth(static_cast<std::size_t>(n), kNone);
  for (idx v = n - 1; v >= 0; --v) {
    const idx p = parent[static_cast<std::size_t>(v)];
    if (p == kNone) {
      depth[static_cast<std::size_t>(v)] = 0;
    } else {
      SPC_CHECK(depth[static_cast<std::size_t>(p)] != kNone,
                "etree_depth: parent must be greater than child");
      depth[static_cast<std::size_t>(v)] = depth[static_cast<std::size_t>(p)] + 1;
    }
  }
  return depth;
}

std::vector<i64> etree_subtree_sizes(const std::vector<idx>& parent) {
  const idx n = static_cast<idx>(parent.size());
  std::vector<i64> size(static_cast<std::size_t>(n), 1);
  for (idx v = 0; v < n; ++v) {
    const idx p = parent[static_cast<std::size_t>(v)];
    if (p != kNone) size[static_cast<std::size_t>(p)] += size[static_cast<std::size_t>(v)];
  }
  return size;
}

std::vector<idx> relabel_parent(const std::vector<idx>& parent,
                                const std::vector<idx>& perm) {
  const std::vector<idx> inv = inverse_permutation(perm);
  std::vector<idx> out(parent.size());
  for (std::size_t k = 0; k < parent.size(); ++k) {
    const idx old_v = perm[k];
    const idx old_p = parent[static_cast<std::size_t>(old_v)];
    out[k] = old_p == kNone ? kNone : inv[static_cast<std::size_t>(old_p)];
  }
  return out;
}

}  // namespace spc
