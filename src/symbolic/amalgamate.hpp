// Relaxed supernode amalgamation (Ashcraft & Grimes 1989, the paper's [1]).
//
// Merges a supernode into its parent when the merge introduces few explicit
// zeros, trading a slightly denser stored factor for larger, more efficient
// blocks. The paper uses amalgamation in all experiments (§2.2).
//
// Only a child whose columns are immediately adjacent to its parent's first
// column can be merged without re-permuting the matrix; on a postordered
// etree that child always exists (the last-visited child), and chains of
// such merges capture the bulk of the benefit.
#pragma once

#include <vector>

#include "support/types.hpp"
#include "symbolic/supernode.hpp"

namespace spc {

struct AmalgamationOptions {
  // Merge while the explicit zeros introduced into the merged trapezoid stay
  // below this fraction of its entries.
  double max_zero_fraction = 0.125;
  // Never grow a supernode beyond this many columns.
  idx max_width = 256;
  // Small supernodes are always merged into an adjacent parent if the result
  // stays within max_small_zeros explicit zeros (Ashcraft-Grimes rule of
  // thumb: tiny supernodes are never worth keeping separate).
  idx always_merge_width = 4;
  i64 max_small_zeros = 512;
};

// Returns a coarser contiguous partition. `counts` are off-diagonal column
// counts of the factor; `parent` is the column etree (both postordered).
SupernodePartition amalgamate_supernodes(const SupernodePartition& sn,
                                         const std::vector<idx>& parent,
                                         const std::vector<i64>& counts,
                                         const AmalgamationOptions& opt = {});

// Explicit zeros introduced by storing each supernode of `part` as a dense
// trapezoid, relative to the exact factor counts. Used by tests and by the
// amalgamation statistics in the benches.
i64 amalgamation_padding(const SupernodePartition& part,
                         const std::vector<i64>& counts);

}  // namespace spc
