#include "symbolic/amalgamate.hpp"

#include "support/error.hpp"

namespace spc {
namespace {

// Dense trapezoid entry count: width w, r rows below the diagonal block.
i64 trapezoid(i64 w, i64 r) { return w * (w + 1) / 2 + w * r; }

}  // namespace

SupernodePartition amalgamate_supernodes(const SupernodePartition& sn,
                                         const std::vector<idx>& parent,
                                         const std::vector<i64>& counts,
                                         const AmalgamationOptions& opt) {
  const idx num_sn = sn.count();
  const idx n = sn.num_cols();
  SPC_CHECK(static_cast<idx>(parent.size()) == n && static_cast<idx>(counts.size()) == n,
            "amalgamate_supernodes: size mismatch");

  // Per current supernode (identified by the original id of the supernode
  // containing its last column): boundaries and structure summary.
  std::vector<idx> first(static_cast<std::size_t>(num_sn));
  std::vector<idx> last(static_cast<std::size_t>(num_sn));
  std::vector<i64> rows_below(static_cast<std::size_t>(num_sn));
  std::vector<i64> exact(static_cast<std::size_t>(num_sn));
  std::vector<bool> absorbed(static_cast<std::size_t>(num_sn), false);
  // sn_by_last[c] = current supernode whose last column is c (kNone if c is
  // not a boundary).
  std::vector<idx> sn_by_last(static_cast<std::size_t>(n), kNone);

  for (idx s = 0; s < num_sn; ++s) {
    first[s] = sn.first_col[s];
    last[s] = sn.first_col[s + 1] - 1;
    const i64 w = sn.width(s);
    rows_below[s] = counts[static_cast<std::size_t>(first[s])] - (w - 1);
    SPC_CHECK(rows_below[s] >= 0, "amalgamate: inconsistent counts/supernodes");
    exact[s] = 0;
    for (idx c = first[s]; c <= last[s]; ++c) {
      exact[s] += counts[static_cast<std::size_t>(c)] + 1;
    }
    sn_by_last[static_cast<std::size_t>(last[s])] = s;
  }

  for (idx p = 0; p < num_sn; ++p) {
    if (absorbed[p]) continue;
    while (first[p] > 0) {
      const idx c = sn_by_last[static_cast<std::size_t>(first[p]) - 1];
      if (c == kNone) break;
      // c must be a child of p in the supernodal etree: the parent column of
      // its last column must land inside p's current range.
      const idx pcol = parent[static_cast<std::size_t>(last[c])];
      if (pcol == kNone || pcol > last[p]) break;

      const i64 wc = last[c] - first[c] + 1;
      const i64 wp = last[p] - first[p] + 1;
      const i64 w_merged = wc + wp;
      if (w_merged > opt.max_width) break;

      const i64 padded_merged = trapezoid(w_merged, rows_below[p]);
      const i64 exact_merged = exact[c] + exact[p];
      const i64 zeros = padded_merged - exact_merged;
      SPC_CHECK(zeros >= 0, "amalgamate: negative padding");
      const i64 added_zeros =
          padded_merged - trapezoid(wc, rows_below[c]) - trapezoid(wp, rows_below[p]);

      const bool small_rule = wc <= opt.always_merge_width &&
                              added_zeros <= opt.max_small_zeros;
      const bool fraction_rule =
          static_cast<double>(zeros) <=
          opt.max_zero_fraction * static_cast<double>(padded_merged);
      if (!small_rule && !fraction_rule) break;

      // Merge c into p.
      sn_by_last[static_cast<std::size_t>(last[c])] = kNone;
      absorbed[c] = true;
      first[p] = first[c];
      exact[p] = exact_merged;
      // rows_below[p] unchanged: c's rows beyond p are contained in p's.
    }
  }

  SupernodePartition out;
  out.first_col.push_back(0);
  for (idx s = 0; s < num_sn; ++s) {
    if (!absorbed[s]) out.first_col.push_back(last[s] + 1);
  }
  out.finish();
  return out;
}

i64 amalgamation_padding(const SupernodePartition& part,
                         const std::vector<i64>& counts) {
  i64 padding = 0;
  for (idx s = 0; s < part.count(); ++s) {
    const idx f = part.first_col[s];
    const i64 w = part.width(s);
    // The union row structure of a (possibly amalgamated) supernode equals
    // the structure of its last column, whose count is therefore the padded
    // rows-below value.
    const i64 r = counts[static_cast<std::size_t>(part.first_col[s + 1]) - 1];
    i64 exact = 0;
    for (idx c = f; c < part.first_col[s + 1]; ++c) {
      exact += counts[static_cast<std::size_t>(c)] + 1;
    }
    padding += trapezoid(w, r) - exact;
  }
  return padding;
}

}  // namespace spc
