// Elimination tree computation and manipulation (Liu 1990, the paper's [10]).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "support/types.hpp"

namespace spc {

// Parent array of the elimination tree of A (lower-triangular SPD pattern).
// parent[j] = kNone for roots (the etree is a forest if A is reducible).
std::vector<idx> elimination_tree(const SymSparse& a);

// Row-major view of the strictly-lower triangle of A: for each row i, the
// column indices k < i with A(i,k) != 0, in increasing order. Shared by the
// etree and column-count algorithms, which consume A by rows.
void lower_row_structure(const SymSparse& a, std::vector<i64>& rptr,
                         std::vector<idx>& rcol);

// A postorder of the forest: post[k] = the vertex visited k-th. Children are
// visited before parents; each subtree's vertices are contiguous in post.
// This is a permutation in the library's new->old convention, suitable for
// SymSparse::permuted.
std::vector<idx> etree_postorder(const std::vector<idx>& parent);

// Depth of each vertex: roots have depth 0, children depth(parent)+1.
std::vector<idx> etree_depth(const std::vector<idx>& parent);

// Number of vertices in the subtree rooted at each vertex (inclusive).
std::vector<i64> etree_subtree_sizes(const std::vector<idx>& parent);

// Relabels a parent array under a permutation of the vertices:
// new_parent[inv[v]] = inv[parent[v]]. Used after postordering.
std::vector<idx> relabel_parent(const std::vector<idx>& parent,
                                const std::vector<idx>& perm);

}  // namespace spc
