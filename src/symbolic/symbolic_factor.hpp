// Supernodal symbolic factorization: for each supernode, the sorted list of
// factor row indices strictly below its last column (the union structure of
// its member columns; amalgamated supernodes store explicit zeros and are
// treated as dense within this structure, as in the paper §2.2).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "support/types.hpp"
#include "symbolic/supernode.hpp"

namespace spc {

struct SymbolicFactor {
  SupernodePartition sn;
  std::vector<idx> sn_parent;  // supernodal etree (kNone for roots)
  std::vector<i64> rowptr;     // size sn.count()+1
  std::vector<idx> rows;       // concatenated ascending row ids per supernode

  idx num_supernodes() const { return sn.count(); }
  const idx* rows_begin(idx s) const { return rows.data() + rowptr[s]; }
  const idx* rows_end(idx s) const { return rows.data() + rowptr[s + 1]; }
  i64 rows_below(idx s) const { return rowptr[s + 1] - rowptr[s]; }

  // Entries stored for supernode s as a dense trapezoid (incl. diagonal).
  i64 stored_entries(idx s) const;
  i64 total_stored_entries() const;
};

// `a` must already carry the final ordering (fill-reducing + postorder);
// `parent` is its column etree, `part` a supernode partition of its columns
// (from find_supernodes, optionally amalgamated).
SymbolicFactor symbolic_factorize(const SymSparse& a, const std::vector<idx>& parent,
                                  const SupernodePartition& part);

}  // namespace spc
