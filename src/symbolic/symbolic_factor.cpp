#include "symbolic/symbolic_factor.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace spc {

i64 SymbolicFactor::stored_entries(idx s) const {
  const i64 w = sn.width(s);
  return w * (w + 1) / 2 + w * rows_below(s);
}

i64 SymbolicFactor::total_stored_entries() const {
  i64 total = 0;
  for (idx s = 0; s < num_supernodes(); ++s) total += stored_entries(s);
  return total;
}

SymbolicFactor symbolic_factorize(const SymSparse& a, const std::vector<idx>& parent,
                                  const SupernodePartition& part) {
  const idx n = a.num_rows();
  SPC_CHECK(part.num_cols() == n, "symbolic_factorize: partition/matrix mismatch");
  SymbolicFactor sf;
  sf.sn = part;
  sf.sn_parent = supernodal_etree(part, parent);
  const idx num_sn = part.count();

  // Children lists in the supernodal etree.
  std::vector<idx> child_head(static_cast<std::size_t>(num_sn), kNone);
  std::vector<idx> child_next(static_cast<std::size_t>(num_sn), kNone);
  for (idx s = num_sn - 1; s >= 0; --s) {
    const idx p = sf.sn_parent[static_cast<std::size_t>(s)];
    if (p != kNone) {
      child_next[static_cast<std::size_t>(s)] = child_head[static_cast<std::size_t>(p)];
      child_head[static_cast<std::size_t>(p)] = s;
    }
  }

  sf.rowptr.assign(static_cast<std::size_t>(num_sn) + 1, 0);
  std::vector<std::vector<idx>> row_lists(static_cast<std::size_t>(num_sn));
  std::vector<idx> mark(static_cast<std::size_t>(n), kNone);
  const auto& ptr = a.col_ptr();
  const auto& row = a.row_idx();

  for (idx s = 0; s < num_sn; ++s) {
    const idx last = part.first_col[s + 1] - 1;
    std::vector<idx>& list = row_lists[static_cast<std::size_t>(s)];
    auto add = [&](idx r) {
      if (r > last && mark[static_cast<std::size_t>(r)] != s) {
        mark[static_cast<std::size_t>(r)] = s;
        list.push_back(r);
      }
    };
    for (idx c = part.first_col[s]; c <= last; ++c) {
      for (i64 e = ptr[static_cast<std::size_t>(c)] + 1; e < ptr[static_cast<std::size_t>(c) + 1]; ++e) {
        add(row[static_cast<std::size_t>(e)]);
      }
    }
    for (idx c = child_head[static_cast<std::size_t>(s)]; c != kNone;
         c = child_next[static_cast<std::size_t>(c)]) {
      for (idx r : row_lists[static_cast<std::size_t>(c)]) add(r);
    }
    std::sort(list.begin(), list.end());
    sf.rowptr[static_cast<std::size_t>(s) + 1] =
        sf.rowptr[static_cast<std::size_t>(s)] + static_cast<i64>(list.size());
  }

  sf.rows.resize(static_cast<std::size_t>(sf.rowptr[static_cast<std::size_t>(num_sn)]));
  for (idx s = 0; s < num_sn; ++s) {
    std::copy(row_lists[static_cast<std::size_t>(s)].begin(),
              row_lists[static_cast<std::size_t>(s)].end(),
              sf.rows.begin() + sf.rowptr[static_cast<std::size_t>(s)]);
    // Free child lists eagerly once consumed? Children may be consumed by a
    // later parent only; lists are needed until their parent is processed.
  }
  return sf;
}

}  // namespace spc
