#include "symbolic/colcount.hpp"

#include "support/error.hpp"
#include "symbolic/etree.hpp"

namespace spc {

std::vector<i64> factor_col_counts(const SymSparse& a, const std::vector<idx>& parent) {
  const idx n = a.num_rows();
  SPC_CHECK(static_cast<idx>(parent.size()) == n, "factor_col_counts: size mismatch");
  std::vector<i64> count(static_cast<std::size_t>(n), 0);
  std::vector<idx> mark(static_cast<std::size_t>(n), kNone);
  std::vector<i64> rptr;
  std::vector<idx> rcol;
  lower_row_structure(a, rptr, rcol);
  // All walks for one row happen consecutively so the per-row marks stay
  // valid: entry (i, k) of A seeds a walk from k toward the root, stopping
  // at columns already visited for row i.
  for (idx i = 0; i < n; ++i) {
    for (i64 e = rptr[static_cast<std::size_t>(i)]; e < rptr[static_cast<std::size_t>(i) + 1]; ++e) {
      idx j = rcol[static_cast<std::size_t>(e)];
      while (j != kNone && j < i && mark[static_cast<std::size_t>(j)] != i) {
        ++count[static_cast<std::size_t>(j)];
        mark[static_cast<std::size_t>(j)] = i;
        j = parent[static_cast<std::size_t>(j)];
      }
    }
  }
  return count;
}

i64 factor_nnz(const std::vector<i64>& counts) {
  i64 total = 0;
  for (i64 c : counts) total += c;
  return total;
}

i64 factor_flops(const std::vector<i64>& counts) {
  i64 total = 0;
  for (i64 c : counts) total += c * c + 3 * c + 1;
  return total;
}

}  // namespace spc
