// Factor column counts via row-subtree traversal.
//
// For each row i, the columns j with L(i,j) != 0 form a subtree of the
// elimination tree (the "row subtree") whose leaves are the nonzero columns
// of row i of A. Walking each row subtree once touches every factor entry
// exactly once, so the total cost is O(nnz(L)) — at most ~23M steps for the
// paper's largest problems.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "support/types.hpp"

namespace spc {

// counts[j] = number of OFF-diagonal nonzeros in column j of L (the paper's
// "NZ in L" is the sum of these). `parent` is the etree of `a`.
std::vector<i64> factor_col_counts(const SymSparse& a, const std::vector<idx>& parent);

// Total strictly-lower nonzeros of L.
i64 factor_nnz(const std::vector<i64>& counts);

// Sequential factorization operation count (DESIGN.md §5 convention):
// sum_j (c_j^2 + 3 c_j + 1).
i64 factor_flops(const std::vector<i64>& counts);

}  // namespace spc
