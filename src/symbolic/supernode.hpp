// Supernode detection (paper §2.2).
//
// A supernode is a maximal set of contiguous factor columns sharing an
// identical off-diagonal nonzero structure, with a dense lower-triangular
// diagonal block. On a postordered matrix, column j extends the supernode of
// column j-1 iff parent(j-1) == j and count(j-1) == count(j) + 1 (equal
// structure below the diagonal).
#pragma once

#include <vector>

#include "support/types.hpp"

namespace spc {

// A contiguous partition of the n columns into supernodes.
struct SupernodePartition {
  std::vector<idx> first_col;  // size num_supernodes + 1; sn s = [first_col[s], first_col[s+1])
  std::vector<idx> sn_of_col;  // size n

  idx count() const { return static_cast<idx>(first_col.size()) - 1; }
  idx width(idx s) const { return first_col[s + 1] - first_col[s]; }
  idx num_cols() const { return first_col.empty() ? 0 : first_col.back(); }

  // Rebuilds sn_of_col from first_col; validates contiguity.
  void finish();
};

// Fundamental-style supernode detection from the (postordered) etree and
// off-diagonal column counts.
SupernodePartition find_supernodes(const std::vector<idx>& parent,
                                   const std::vector<i64>& counts);

// Supernodal elimination tree: parent supernode of s is the supernode
// containing parent(last column of s); kNone for roots.
std::vector<idx> supernodal_etree(const SupernodePartition& sn,
                                  const std::vector<idx>& parent);

}  // namespace spc
