// Column-aligned plain-text table printer, used by the bench harnesses to
// regenerate the paper's tables in a readable form.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace spc {

class Table {
 public:
  // Column headers define the table width.
  explicit Table(std::vector<std::string> headers);

  // Starts a new row. Cells are appended with add().
  void new_row();
  void add(const std::string& cell);
  void add(const char* cell) { add(std::string(cell)); }
  void add(long long v);
  void add(int v) { add(static_cast<long long>(v)); }
  void add(std::size_t v) { add(static_cast<long long>(v)); }
  // Fixed-point with `digits` decimals.
  void add(double v, int digits = 2);
  // Percentage "12%" (rounded).
  void add_percent(double fraction);

  // Renders the whole table with aligned columns.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spc
