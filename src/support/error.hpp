// Error handling: all precondition violations throw spc::Error so that tests
// can assert on failure paths without aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace spc {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Builds "file:line: msg" and throws spc::Error.
[[noreturn]] void throw_error(const char* file, int line, const std::string& msg);

}  // namespace spc

// Precondition / invariant check that stays enabled in release builds.
// Usage: SPC_CHECK(n >= 0, "matrix dimension must be non-negative");
#define SPC_CHECK(cond, msg)                          \
  do {                                                \
    if (!(cond)) {                                    \
      ::spc::throw_error(__FILE__, __LINE__, (msg));  \
    }                                                 \
  } while (false)
