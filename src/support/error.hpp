// Error handling: all precondition violations throw spc::Error so that tests
// can assert on failure paths without aborting the process.
//
// Errors carry a structured ErrorKind plus an optional typed context payload
// (failing column, owning supernode, block coordinates, pivot value, input
// line number) so callers can react programmatically instead of parsing the
// what() string. See docs/ROBUSTNESS.md for the taxonomy and the CLI
// exit-code contract derived from it.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace spc {

enum class ErrorKind {
  kInternal,             // precondition/invariant violation (SPC_CHECK)
  kNotPositiveDefinite,  // numeric breakdown: a pivot failed d > 0
  kMalformedInput,       // unparseable or out-of-range external input
  kResourceExhausted,    // allocation failure or memory-budget breach
  kCancelled,            // cooperative cancellation via a caller's token
  kInjectedFault,        // deterministic fault injection (SPC_FAULTS=ON)
  kDeadlineExceeded,     // a governed request overran its wall-clock deadline
};

// Human-readable name for an ErrorKind ("NotPositiveDefinite", ...).
const char* error_kind_name(ErrorKind kind);

// Documented process exit code for CLI tools reporting this kind
// (docs/ROBUSTNESS.md): Internal=1, MalformedInput=3, NotPositiveDefinite=4,
// ResourceExhausted=5, Cancelled=6, InjectedFault=7, DeadlineExceeded=8.
// (2 is reserved for usage errors, which never reach an Error object.)
int exit_code_for(ErrorKind kind);

// Optional structured payload. Fields default to "unknown" and are filled in
// where the information exists: pivot failures carry the global (permuted)
// column, owning supernode, and block coordinates; parser failures carry the
// 1-based input line; governed failures carry the resource accounting
// (bytes requested / in use / budget, or elapsed vs limit) plus the phase
// ("factorize", "solve", ...) that breached.
struct ErrorContext {
  std::int32_t column = -1;     // global column of the failing pivot
  std::int32_t supernode = -1;  // owning supernode
  std::int32_t block_i = -1;    // block-row coordinate of the failing block
  std::int32_t block_j = -1;    // block-column coordinate
  double pivot = 0.0;           // offending pivot value (valid iff has_pivot)
  bool has_pivot = false;
  std::int64_t line = 0;        // 1-based input line (MalformedInput), 0 = n/a
  // Memory-budget breach payload (valid iff has_budget).
  std::int64_t bytes_requested = 0;  // size of the charge that breached
  std::int64_t bytes_in_use = 0;     // bytes charged at the time of breach
  std::int64_t budget_bytes = 0;     // the configured budget
  bool has_budget = false;
  // Deadline breach payload (valid iff has_deadline).
  double elapsed_s = 0.0;  // wall-clock seconds elapsed when detected
  double limit_s = 0.0;    // the configured deadline
  bool has_deadline = false;
  const char* phase = nullptr;  // static string: "analyze"/"factorize"/"solve"
};

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, ErrorKind kind = ErrorKind::kInternal,
                 const ErrorContext& context = {})
      : std::runtime_error(what), kind_(kind), context_(context) {}

  ErrorKind kind() const { return kind_; }
  const ErrorContext& context() const { return context_; }

 private:
  ErrorKind kind_;
  ErrorContext context_;
};

// Builds "file:line: msg" and throws spc::Error (kind Internal).
[[noreturn]] void throw_error(const char* file, int line, const std::string& msg);

// Throws Error(kMalformedInput) with "(line N)" appended when line > 0.
[[noreturn]] void throw_malformed(const std::string& msg, std::int64_t line);

// Throws Error(kNotPositiveDefinite) with the pivot location appended to msg.
[[noreturn]] void throw_not_spd(const std::string& msg, const ErrorContext& ctx);

// Throws Error(kResourceExhausted) with the budget accounting appended to msg
// (requires ctx.has_budget; ctx.phase is included when set).
[[noreturn]] void throw_budget_exceeded(const std::string& msg,
                                        const ErrorContext& ctx);

// Throws Error(kDeadlineExceeded) with elapsed-vs-limit appended to msg
// (requires ctx.has_deadline; ctx.phase is included when set).
[[noreturn]] void throw_deadline_exceeded(const std::string& msg,
                                          const ErrorContext& ctx);

}  // namespace spc

// Precondition / invariant check that stays enabled in release builds.
// Usage: SPC_CHECK(n >= 0, "matrix dimension must be non-negative");
#define SPC_CHECK(cond, msg)                          \
  do {                                                \
    if (!(cond)) {                                    \
      ::spc::throw_error(__FILE__, __LINE__, (msg));  \
    }                                                 \
  } while (false)

// Input validation check for parsers: failure raises MalformedInput carrying
// the 1-based line number of the offending input line.
#define SPC_CHECK_INPUT(cond, msg, line)          \
  do {                                            \
    if (!(cond)) {                                \
      ::spc::throw_malformed((msg), (line));      \
    }                                             \
  } while (false)
