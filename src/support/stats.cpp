#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace spc {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

double Accumulator::min() const {
  SPC_CHECK(count_ > 0, "Accumulator::min on empty accumulator");
  return min_;
}

double Accumulator::max() const {
  SPC_CHECK(count_ > 0, "Accumulator::max on empty accumulator");
  return max_;
}

double Accumulator::mean() const {
  SPC_CHECK(count_ > 0, "Accumulator::mean on empty accumulator");
  return sum_ / static_cast<double>(count_);
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geometric_mean(const std::vector<double>& xs) {
  SPC_CHECK(!xs.empty(), "geometric_mean of empty vector");
  double log_sum = 0.0;
  for (double x : xs) {
    SPC_CHECK(x > 0.0, "geometric_mean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double max_value(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

}  // namespace spc
