// Clang thread-safety analysis attribute macros
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under any other
// compiler they expand to nothing, so GCC builds are unaffected.
//
// The annotated synchronization wrappers that carry these capabilities —
// spc::Mutex, spc::LockGuard, spc::CondVar — live in support/sync.hpp (the
// single header every concurrent translation unit includes). A clang build
// with -DSPC_ANALYZE=ON (which adds -Wthread-safety -Werror) statically
// verifies the lock discipline: every GUARDED_BY field is only touched with
// its mutex held, every REQUIRES contract is met at each call site, and
// scoped locks cannot leak.
//
// Convention: data members carry SPC_GUARDED_BY(mutex); functions that the
// caller must enter locked carry SPC_REQUIRES(mutex). The wrappers in
// sync.hpp are the single trusted boundary between the annotated world and
// the unannotated std internals — nothing outside that header may suppress
// the analysis.
#pragma once

#if defined(__clang__)
#define SPC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SPC_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define SPC_CAPABILITY(x) SPC_THREAD_ANNOTATION(capability(x))
#define SPC_SCOPED_CAPABILITY SPC_THREAD_ANNOTATION(scoped_lockable)
#define SPC_GUARDED_BY(x) SPC_THREAD_ANNOTATION(guarded_by(x))
#define SPC_PT_GUARDED_BY(x) SPC_THREAD_ANNOTATION(pt_guarded_by(x))
#define SPC_ACQUIRE(...) SPC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SPC_RELEASE(...) SPC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SPC_TRY_ACQUIRE(...) \
  SPC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SPC_REQUIRES(...) SPC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SPC_EXCLUDES(...) SPC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SPC_ASSERT_CAPABILITY(x) SPC_THREAD_ANNOTATION(assert_capability(x))
#define SPC_RETURN_CAPABILITY(x) SPC_THREAD_ANNOTATION(lock_returned(x))
#define SPC_NO_THREAD_SAFETY_ANALYSIS \
  SPC_THREAD_ANNOTATION(no_thread_safety_analysis)
