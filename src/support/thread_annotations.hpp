// Clang thread-safety analysis layer.
//
// Two pieces:
//  1. SPC_* attribute macros wrapping Clang's capability annotations
//     (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under any
//     other compiler they expand to nothing, so GCC builds are unaffected.
//  2. Annotated synchronization wrappers — spc::Mutex, spc::LockGuard,
//     spc::CondVar — over the std primitives. All concurrent code in the
//     library locks through these so that a clang build with
//     -DSPC_ANALYZE=ON (which adds -Wthread-safety -Werror) statically
//     verifies the lock discipline: every GUARDED_BY field is only touched
//     with its mutex held, every REQUIRES contract is met at each call
//     site, and scoped locks cannot leak.
//
// Convention: data members carry SPC_GUARDED_BY(mutex); functions that the
// caller must enter locked carry SPC_REQUIRES(mutex). The wrappers below are
// the single trusted boundary between the annotated world and the
// unannotated std internals — nothing outside this header may suppress the
// analysis.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define SPC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SPC_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define SPC_CAPABILITY(x) SPC_THREAD_ANNOTATION(capability(x))
#define SPC_SCOPED_CAPABILITY SPC_THREAD_ANNOTATION(scoped_lockable)
#define SPC_GUARDED_BY(x) SPC_THREAD_ANNOTATION(guarded_by(x))
#define SPC_PT_GUARDED_BY(x) SPC_THREAD_ANNOTATION(pt_guarded_by(x))
#define SPC_ACQUIRE(...) SPC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SPC_RELEASE(...) SPC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SPC_TRY_ACQUIRE(...) \
  SPC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SPC_REQUIRES(...) SPC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SPC_EXCLUDES(...) SPC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SPC_ASSERT_CAPABILITY(x) SPC_THREAD_ANNOTATION(assert_capability(x))
#define SPC_RETURN_CAPABILITY(x) SPC_THREAD_ANNOTATION(lock_returned(x))
#define SPC_NO_THREAD_SAFETY_ANALYSIS \
  SPC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace spc {

// std::mutex with a capability identity the analysis can track.
class SPC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SPC_ACQUIRE() { m_.lock(); }
  void unlock() SPC_RELEASE() { m_.unlock(); }
  bool try_lock() SPC_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

// Scoped lock over spc::Mutex (the annotated std::lock_guard).
class SPC_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) SPC_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() SPC_RELEASE() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

// Condition variable usable with spc::Mutex. wait() requires the mutex held
// and re-holds it on return, which the REQUIRES contract expresses exactly;
// predicate re-checks are written as explicit while-loops at the call sites
// so the analysis sees every guarded read under the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& m) SPC_REQUIRES(m) {
    std::unique_lock<std::mutex> lk(m.m_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership stays with the caller's scoped lock
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace spc
