#include "support/error.hpp"

#include <cstdio>

namespace spc {

const char* error_kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kInternal: return "Internal";
    case ErrorKind::kNotPositiveDefinite: return "NotPositiveDefinite";
    case ErrorKind::kMalformedInput: return "MalformedInput";
    case ErrorKind::kResourceExhausted: return "ResourceExhausted";
    case ErrorKind::kCancelled: return "Cancelled";
    case ErrorKind::kInjectedFault: return "InjectedFault";
    case ErrorKind::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "Internal";
}

int exit_code_for(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kInternal: return 1;
    case ErrorKind::kNotPositiveDefinite: return 4;
    case ErrorKind::kMalformedInput: return 3;
    case ErrorKind::kResourceExhausted: return 5;
    case ErrorKind::kCancelled: return 6;
    case ErrorKind::kInjectedFault: return 7;
    case ErrorKind::kDeadlineExceeded: return 8;
  }
  return 1;
}

void throw_error(const char* file, int line, const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + msg);
}

void throw_malformed(const std::string& msg, std::int64_t line) {
  ErrorContext ctx;
  ctx.line = line;
  std::string what = msg;
  if (line > 0) what += " (line " + std::to_string(line) + ")";
  throw Error(what, ErrorKind::kMalformedInput, ctx);
}

void throw_not_spd(const std::string& msg, const ErrorContext& ctx) {
  std::string what = msg;
  if (ctx.column >= 0) what += " at column " + std::to_string(ctx.column);
  if (ctx.supernode >= 0) {
    what += " (supernode " + std::to_string(ctx.supernode);
    if (ctx.block_j >= 0) {
      what += ", block (" + std::to_string(ctx.block_i) + "," +
              std::to_string(ctx.block_j) + ")";
    }
    what += ")";
  }
  if (ctx.has_pivot) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3e", ctx.pivot);
    what += ", pivot " + std::string(buf);
  }
  throw Error(what, ErrorKind::kNotPositiveDefinite, ctx);
}

void throw_budget_exceeded(const std::string& msg, const ErrorContext& ctx) {
  std::string what = msg;
  if (ctx.phase != nullptr) what += " during " + std::string(ctx.phase);
  what += ": " + std::to_string(ctx.bytes_requested) + " bytes requested with " +
          std::to_string(ctx.bytes_in_use) + " in use exceeds budget of " +
          std::to_string(ctx.budget_bytes) + " bytes";
  throw Error(what, ErrorKind::kResourceExhausted, ctx);
}

void throw_deadline_exceeded(const std::string& msg, const ErrorContext& ctx) {
  char buf[64];
  std::string what = msg;
  if (ctx.phase != nullptr) what += " during " + std::string(ctx.phase);
  std::snprintf(buf, sizeof(buf), ": %.3fs elapsed, limit %.3fs", ctx.elapsed_s,
                ctx.limit_s);
  what += buf;
  throw Error(what, ErrorKind::kDeadlineExceeded, ctx);
}

}  // namespace spc
