#include "support/error.hpp"

namespace spc {

void throw_error(const char* file, int line, const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + msg);
}

}  // namespace spc
