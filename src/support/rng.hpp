// Deterministic pseudo-random number generation for matrix generators and
// property tests. xoshiro256** seeded via SplitMix64: reproducible across
// platforms (unlike std::mt19937 + distributions, whose results are
// implementation-defined for some distributions).
#pragma once

#include <cstdint>

#include "support/types.hpp"

namespace spc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  // Uniform in [0, bound) via Lemire's rejection-free-ish multiply-shift.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  idx uniform_int(idx lo, idx hi);

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // True with probability p.
  bool bernoulli(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace spc
