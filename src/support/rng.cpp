#include "support/rng.hpp"

#include "support/error.hpp"

namespace spc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SPC_CHECK(bound > 0, "next_below: bound must be positive");
  // Multiply-shift; bias is negligible for bound << 2^64 (all our uses).
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
}

idx Rng::uniform_int(idx lo, idx hi) {
  SPC_CHECK(lo <= hi, "uniform_int: empty range");
  return lo + static_cast<idx>(next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

}  // namespace spc
