#include "support/fault.hpp"

#include <cmath>
#include <cstdlib>

#include "support/error.hpp"

namespace spc::fault {
namespace {

// Global plan. Fields are individually atomic so tests can install a plan
// while previously-spawned (but idle) worker threads still exist without a
// data race; set_plan/clear are not meant to race with active injection.
//
// memory-order audit (sync_lint allowlist: this file): every access below
// is relaxed on purpose. Each field is a self-contained scalar — no access
// publishes or consumes any other memory, so no release/acquire pairing is
// needed anywhere: a worker that reads a torn-in-time mix of {prob, seed,
// budget} during plan install merely decides one injection differently,
// which set_plan's contract (install before the run under test) already
// excludes. The budget CAS needs only the atomicity of the RMW itself to
// avoid overdrawing, not ordering; `fired` is a pure statistics counter
// read after workers join (join provides the happens-before).
struct SiteState {
  std::atomic<double> prob{0.0};
  std::atomic<std::uint64_t> seed{0};
  std::atomic<std::int64_t> budget{-1};
  std::atomic<std::int64_t> fired{0};
};

SiteState g_sites[kNumSites];

SiteState& state(Site site) { return g_sites[static_cast<int>(site)]; }

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Uniform [0,1) draw for (seed, key): stable across threads and runs.
double decision(std::uint64_t seed, std::uint64_t key) {
  const std::uint64_t h = splitmix64(seed ^ splitmix64(key));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool site_from_name(const std::string& name, Site* out) {
  if (name == "alloc") { *out = Site::kAlloc; return true; }
  if (name == "kernel") { *out = Site::kKernel; return true; }
  if (name == "input") { *out = Site::kInput; return true; }
  if (name == "budget") { *out = Site::kBudget; return true; }
  if (name == "deadline") { *out = Site::kDeadline; return true; }
  return false;
}

}  // namespace

void set_plan(const FaultPlan& plan) {
  for (int i = 0; i < kNumSites; ++i) {
    g_sites[i].prob.store(plan.site[i].prob, std::memory_order_relaxed);
    g_sites[i].seed.store(plan.site[i].seed, std::memory_order_relaxed);
    g_sites[i].budget.store(plan.site[i].budget, std::memory_order_relaxed);
    g_sites[i].fired.store(0, std::memory_order_relaxed);
  }
}

void clear() { set_plan(FaultPlan{}); }

std::int64_t injected(Site site) {
  return state(site).fired.load(std::memory_order_relaxed);
}

bool parse_plan(const std::string& spec, FaultPlan* plan) {
  FaultPlan parsed;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    // site:prob:seed[:budget]
    const std::size_t c1 = entry.find(':');
    if (c1 == std::string::npos) return false;
    const std::size_t c2 = entry.find(':', c1 + 1);
    if (c2 == std::string::npos) return false;
    const std::size_t c3 = entry.find(':', c2 + 1);
    Site site;
    if (!site_from_name(entry.substr(0, c1), &site)) return false;
    SitePlan& sp = parsed.site[static_cast<int>(site)];
    try {
      std::size_t used = 0;
      const std::string prob_s = entry.substr(c1 + 1, c2 - c1 - 1);
      sp.prob = std::stod(prob_s, &used);
      if (used != prob_s.size()) return false;
      const std::string seed_s =
          entry.substr(c2 + 1, (c3 == std::string::npos ? entry.size() : c3) - c2 - 1);
      sp.seed = std::stoull(seed_s, &used);
      if (used != seed_s.size()) return false;
      if (c3 != std::string::npos) {
        const std::string budget_s = entry.substr(c3 + 1);
        sp.budget = std::stoll(budget_s, &used);
        if (used != budget_s.size()) return false;
      }
    } catch (const std::exception&) {
      return false;
    }
    if (!(sp.prob >= 0.0 && sp.prob <= 1.0)) return false;
  }
  *plan = parsed;
  return true;
}

void configure_from_env() {
  const char* env = std::getenv("SPC_FAULT");
  if (env == nullptr) return;
  FaultPlan plan;
  if (parse_plan(env, &plan)) set_plan(plan);
}

#if SPC_FAULTS_ENABLED
// In fault-injection builds the environment is read once at startup, so
// SPC_FAULT=... works on any binary linking the library (CLI tools, tests,
// benches) without per-tool wiring. Normal builds ignore the variable.
namespace {
const bool g_env_plan_installed = [] {
  configure_from_env();
  return true;
}();
}  // namespace
#endif

bool should_inject(Site site, std::uint64_t key) {
  SiteState& s = state(site);
  const double prob = s.prob.load(std::memory_order_relaxed);
  if (prob <= 0.0) return false;
  if (decision(s.seed.load(std::memory_order_relaxed), key) >= prob) return false;
  // Consume budget (-1 = unlimited). CAS loop so concurrent workers never
  // overdraw: exactly `budget` injections fire, then the site goes quiet.
  std::int64_t b = s.budget.load(std::memory_order_relaxed);
  while (b >= 0) {
    if (b == 0) return false;
    if (s.budget.compare_exchange_weak(b, b - 1, std::memory_order_relaxed)) break;
  }
  s.fired.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void maybe_throw(Site site, std::uint64_t key, const char* what) {
  if (!should_inject(site, key)) return;
  throw Error(std::string(what) + " [injected fault]", ErrorKind::kInjectedFault);
}

double maybe_poison(std::uint64_t key, double v) {
  if (!should_inject(Site::kInput, key)) return v;
  // Keyed choice between the two poisoning modes from the fault plan design:
  // quiet NaN or a negative value that breaks diagonal dominance.
  if (splitmix64(key ^ 0x5eedu) & 1u) return std::nan("");
  return -std::abs(v) - 1.0;
}

}  // namespace spc::fault
