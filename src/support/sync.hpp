// The single synchronization layer of the library.
//
// Every atomic, mutex, and condition variable in concurrent library code is
// spelled through the aliases in this header — spc::atomic<T>, spc::Mutex,
// spc::LockGuard, spc::CondVar — never through the std primitives directly
// (tools/sync_lint.sh enforces this outside src/support/ and src/model/).
// The aliases resolve two ways:
//
//   * Normal builds (the default): spc::atomic<T> IS std::atomic<T> (a type
//     alias, so codegen, layout, and ABI are bitwise identical to using the
//     std type directly — see tests/test_shim_parity.cpp), and Mutex /
//     LockGuard / CondVar are the thin annotated wrappers over std::mutex /
//     std::condition_variable defined below. Zero overhead, zero behavior
//     change.
//
//   * -DSPC_MODEL=ON: the aliases resolve to the instrumented versions in
//     src/model/shim.hpp, which route every load / store / RMW / lock /
//     wait through the cooperative model-checking scheduler (src/model/)
//     whenever the calling thread is a registered logical thread of an
//     active exploration, and pass through to the real std primitives
//     otherwise. This is what lets the litmus suite (tests/test_model.cpp)
//     drive the real WorkStealingQueues / FailureSlot protocols through
//     systematically explored interleavings. See docs/STATIC_ANALYSIS.md.
#pragma once

#include <atomic>

#include "support/thread_annotations.hpp"

#if defined(SPC_MODEL_ENABLED)

#include "model/shim.hpp"

namespace spc {
template <typename T>
using atomic = model::Atomic<T>;
using Mutex = model::Mutex;
using LockGuard = model::LockGuard;
using CondVar = model::CondVar;
}  // namespace spc

#else  // !SPC_MODEL_ENABLED — the real primitives, annotated.

#include <condition_variable>
#include <mutex>

namespace spc {

template <typename T>
using atomic = std::atomic<T>;

// std::mutex with a capability identity the analysis can track.
class SPC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SPC_ACQUIRE() { m_.lock(); }
  void unlock() SPC_RELEASE() { m_.unlock(); }
  bool try_lock() SPC_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

// Scoped lock over spc::Mutex (the annotated std::lock_guard).
class SPC_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) SPC_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() SPC_RELEASE() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

// Condition variable usable with spc::Mutex. wait() requires the mutex held
// and re-holds it on return, which the REQUIRES contract expresses exactly;
// predicate re-checks are written as explicit while-loops at the call sites
// so the analysis sees every guarded read under the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& m) SPC_REQUIRES(m) {
    std::unique_lock<std::mutex> lk(m.m_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership stays with the caller's scoped lock
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace spc

#endif  // SPC_MODEL_ENABLED
