// Fundamental index and count types used throughout the library.
//
// Matrices in the benchmark suite reach n ~ 64,000 and NZ(L) ~ 21M, so 32-bit
// indices suffice for vertex/column numbering, while all aggregate counters
// (flop counts, communication volumes, work totals) are 64-bit.
#pragma once

#include <cstdint>

namespace spc {

// Vertex / column / block index. -1 is used as a sentinel ("none").
using idx = std::int32_t;

// Aggregate counters: flops, bytes, work units.
using i64 = std::int64_t;

inline constexpr idx kNone = -1;

}  // namespace spc
