// Small statistics helpers used by balance metrics and bench harnesses.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace spc {

// Online accumulator for min / max / mean / sum.
class Accumulator {
 public:
  void add(double x);

  i64 count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double mean() const;

 private:
  i64 count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Arithmetic mean of a vector (0 for empty input).
double mean(const std::vector<double>& xs);

// Geometric mean of strictly positive values.
double geometric_mean(const std::vector<double>& xs);

// max element (0 for empty input).
double max_value(const std::vector<double>& xs);

}  // namespace spc
