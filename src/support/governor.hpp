// Resource governance: memory budgets, wall-clock deadlines, and the
// degradation ladder walked by the SparseCholesky facade.
//
// Three coupled pieces (docs/ROBUSTNESS.md §7):
//
//  * MemoryBudget — atomic byte accounting threaded through every large
//    allocation (block arenas, ParallelWorkspace, SolveWorkspace, fp32
//    arena, per-worker scratch). Charges happen *before* the allocation;
//    a breach surfaces as Error(kResourceExhausted) with typed context
//    (phase, bytes requested, bytes in use, budget) instead of bad_alloc.
//    peak_bytes() lets analyze report a memory estimate up front so the
//    facade can reject infeasible requests before numeric work starts.
//
//  * Deadline — a steady-clock limit polled at task-acquire boundaries in
//    the parallel executors / parallel solve and at block-column boundaries
//    in the serial engines. Clock reads are amortized (DeadlinePoller): far
//    from expiry a worker reads the clock only every few tasks; within the
//    near window it checks every task, so overshoot is bounded by one
//    task's duration. Breaches throw Error(kDeadlineExceeded).
//
//  * RetryPolicy / DegradeRung — the facade's explicit, logged ladder:
//    fp32→fp64, halved block_cap, supernode→uniform blocking,
//    parallel→serial, plus bounded transient retries. Every rung taken is
//    recorded in FactorizeInfo::degrade_path.
//
// Fault-injection sites `budget` and `deadline` (src/support/fault.hpp)
// simulate memory and time pressure so every rung is deterministically
// reachable in tests without real OOM or slow matrices.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>

#include "support/sync.hpp"

namespace spc::governor {

using i64 = std::int64_t;

// ---------------------------------------------------------------------------
// MemoryBudget
// ---------------------------------------------------------------------------

// Thread-safe byte accounting with an optional hard cap. budget_bytes == 0
// means "account only, never breach" — peak/in-use tracking still works, so
// an ungoverned run can be used to measure a workload before capping it.
class MemoryBudget {
 public:
  explicit MemoryBudget(i64 budget_bytes = 0) : budget_(budget_bytes) {}

  // Charges `bytes` against the budget, tagged with a static phase string
  // ("factorize", "solve", ...). Throws Error(kResourceExhausted) with the
  // full accounting in its ErrorContext when the charge would exceed the
  // budget; the failed charge is refunded before throwing, so in_use_bytes()
  // never stays above the budget. The SPC_FAULT `budget` site can force a
  // breach regardless of the cap.
  void charge(i64 bytes, const char* phase);

  // Returns bytes to the budget. Must match a prior successful charge.
  void release(i64 bytes);

  i64 in_use_bytes() const { return in_use_.load(std::memory_order_relaxed); }
  i64 peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  i64 budget_bytes() const { return budget_; }

  // Rearm for a fresh measurement (does not touch in-use accounting).
  void reset_peak() { peak_.store(in_use_bytes(), std::memory_order_relaxed); }

 private:
  const i64 budget_;  // 0 = unlimited (account only)
  // memory-order audit: both counters are pure accounting scalars — no
  // charge publishes memory to another thread through them (allocations are
  // handed off via the usual ownership channels), so relaxed RMWs suffice.
  // The fetch_add-then-refund protocol in charge() keeps the accounting
  // exact under contention (see the Litmus budget twin in test_model.cpp).
  spc::atomic<i64> in_use_{0};
  spc::atomic<i64> peak_{0};
};

// RAII charge token: accumulates charges against a shared budget and
// releases the total on destruction. A default-constructed (or nullptr-
// budget) token is a no-op, so call sites stay unconditional. Holding the
// budget by shared_ptr keeps the accounting alive even if the owning facade
// is destroyed before a cached workspace.
class BudgetCharge {
 public:
  BudgetCharge() = default;
  explicit BudgetCharge(std::shared_ptr<MemoryBudget> budget)
      : budget_(std::move(budget)) {}
  ~BudgetCharge() { release(); }

  BudgetCharge(const BudgetCharge&) = delete;
  BudgetCharge& operator=(const BudgetCharge&) = delete;
  BudgetCharge(BudgetCharge&& o) noexcept
      : budget_(std::move(o.budget_)), bytes_(o.bytes_) {
    o.bytes_ = 0;
  }
  BudgetCharge& operator=(BudgetCharge&& o) noexcept {
    if (this != &o) {
      release();
      budget_ = std::move(o.budget_);
      bytes_ = o.bytes_;
      o.bytes_ = 0;
    }
    return *this;
  }

  // Rebinds the token to another budget. Any bytes charged so far are
  // released against the old budget first.
  void rebind(std::shared_ptr<MemoryBudget> budget) {
    release();
    budget_ = std::move(budget);
  }

  // Charges `bytes` more (throws on breach; nothing is retained on throw).
  void add(i64 bytes, const char* phase) {
    if (budget_ == nullptr || bytes <= 0) return;
    budget_->charge(bytes, phase);
    bytes_ += bytes;
  }

  // Releases everything charged so far (idempotent).
  void release() {
    if (budget_ != nullptr && bytes_ > 0) budget_->release(bytes_);
    bytes_ = 0;
  }

  i64 bytes() const { return bytes_; }
  const std::shared_ptr<MemoryBudget>& budget() const { return budget_; }

 private:
  std::shared_ptr<MemoryBudget> budget_;
  i64 bytes_ = 0;
};

// ---------------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------------

// A steady-clock wall deadline. Immutable after construction, so concurrent
// workers may poll one instance without synchronization. A limit of exactly
// 0 seconds is armed-and-already-expired (deterministic for CLI tests).
class Deadline {
 public:
  Deadline() = default;  // unarmed: never expires
  explicit Deadline(double limit_s)
      : armed_(true),
        limit_s_(limit_s),
        start_(std::chrono::steady_clock::now()) {}

  bool armed() const { return armed_; }
  double limit_s() const { return limit_s_; }

  double elapsed_s() const {
    if (!armed_) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  // Seconds until expiry; <= 0 once expired. Unarmed deadlines report +inf
  // via a large sentinel. The SPC_FAULT `deadline` site can force expiry.
  double remaining_s() const;

  bool expired() const { return armed_ && remaining_s() <= 0.0; }

  // Throws Error(kDeadlineExceeded) with elapsed/limit and the given phase
  // when expired; otherwise a no-op. Safe to call with deadline == nullptr.
  // Evaluates remaining_s() exactly once (a forced expiry from the
  // SPC_FAULT `deadline` site consumes its injection budget on that read).
  static void check(const Deadline* deadline, const char* phase);

  // Unconditionally reports this deadline as breached. Used by pollers that
  // already observed remaining_s() <= 0 and must not re-read the clock.
  [[noreturn]] void throw_expired(const char* phase) const;

 private:
  bool armed_ = false;
  double limit_s_ = 0.0;
  std::chrono::steady_clock::time_point start_{};
};

// Amortized per-worker deadline polling. Call poll() at every task-acquire
// boundary: far from expiry the clock is read only every kFarStride tasks;
// within kNearWindowS of expiry it is read every task, so the overshoot
// after the deadline passes is bounded by a single task's duration.
class DeadlinePoller {
 public:
  explicit DeadlinePoller(const Deadline* deadline = nullptr)
      : deadline_(deadline) {}

  // Throws Error(kDeadlineExceeded) once the deadline has passed.
  void poll(const char* phase) {
    if (deadline_ == nullptr || !deadline_->armed()) return;
    if (countdown_ > 0) {
      --countdown_;
      return;
    }
    const double remain = deadline_->remaining_s();
    if (remain <= 0.0) deadline_->throw_expired(phase);
    countdown_ = remain > kNearWindowS ? kFarStride : 0;
  }

  static constexpr int kFarStride = 16;        // tasks between far clock reads
  static constexpr double kNearWindowS = 0.01;  // per-task checks inside this

 private:
  const Deadline* deadline_;
  int countdown_ = 0;
};

// ---------------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------------

// One rung of the facade's graceful-degradation ladder, recorded in
// FactorizeInfo::degrade_path in the order taken.
enum class DegradeRung {
  kRetryTransient,      // transient fault: same configuration retried
  kFp32ToFp64,          // fp32 breakdown: refactorize in full precision
  kReducedBlockCap,     // memory pressure: block_cap halved, re-blocked
  kSupernodeToUniform,  // memory pressure: uniform blocking, re-blocked
  kParallelToSerial,    // executor fault / pressure: serial engine
};

const char* degrade_rung_name(DegradeRung rung);

// Bounds for the facade's governed retry loop (SparseCholesky::
// factorize_governed). max_attempts counts every factorization attempt
// including the first; allow_degrade == false restricts the ladder to
// transient same-configuration retries.
struct RetryPolicy {
  int max_attempts = 6;
  bool allow_degrade = true;
  double backoff_s = 0.0;  // sleep before retrying a transient fault
};

}  // namespace spc::governor
