#include "support/governor.hpp"

#include <limits>

#include "support/error.hpp"
#include "support/fault.hpp"

namespace spc::governor {

void MemoryBudget::charge(i64 bytes, const char* phase) {
  if (bytes <= 0) return;
  // fetch_add first, check after: a racing pair of charges may transiently
  // overshoot the cap, but the loser refunds before throwing, so the budget
  // is never *admitted* over cap. The naive load-check-store protocol lets
  // both racers pass the check (the seeded-bug litmus twin in
  // tests/test_model.cpp demonstrates exactly that overcharge).
  const i64 now = in_use_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  i64 p = peak_.load(std::memory_order_relaxed);
  while (now > p &&
         !peak_.compare_exchange_weak(p, now, std::memory_order_relaxed)) {
  }
  bool breach = budget_ > 0 && now > budget_;
#if SPC_FAULTS_ENABLED
  if (!breach &&
      fault::should_inject(fault::Site::kBudget,
                           static_cast<std::uint64_t>(bytes))) {
    breach = true;
  }
#endif
  if (breach) {
    in_use_.fetch_sub(bytes, std::memory_order_relaxed);
    ErrorContext ctx;
    ctx.bytes_requested = bytes;
    ctx.bytes_in_use = now - bytes;
    ctx.budget_bytes = budget_;
    ctx.has_budget = true;
    ctx.phase = phase;
    throw_budget_exceeded("memory budget exceeded", ctx);
  }
}

void MemoryBudget::release(i64 bytes) {
  if (bytes <= 0) return;
  in_use_.fetch_sub(bytes, std::memory_order_relaxed);
}

double Deadline::remaining_s() const {
  if (!armed_) return std::numeric_limits<double>::infinity();
#if SPC_FAULTS_ENABLED
  if (fault::should_inject(fault::Site::kDeadline, 0)) return 0.0;
#endif
  return limit_s_ - elapsed_s();
}

void Deadline::check(const Deadline* deadline, const char* phase) {
  if (deadline == nullptr || !deadline->expired()) return;
  deadline->throw_expired(phase);
}

void Deadline::throw_expired(const char* phase) const {
  ErrorContext ctx;
  ctx.elapsed_s = elapsed_s();
  ctx.limit_s = limit_s();
  ctx.has_deadline = true;
  ctx.phase = phase;
  throw_deadline_exceeded("deadline exceeded", ctx);
}

const char* degrade_rung_name(DegradeRung rung) {
  switch (rung) {
    case DegradeRung::kRetryTransient: return "retry-transient";
    case DegradeRung::kFp32ToFp64: return "fp32-to-fp64";
    case DegradeRung::kReducedBlockCap: return "reduced-block-cap";
    case DegradeRung::kSupernodeToUniform: return "supernode-to-uniform";
    case DegradeRung::kParallelToSerial: return "parallel-to-serial";
  }
  return "unknown";
}

}  // namespace spc::governor
