#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/error.hpp"

namespace spc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SPC_CHECK(!headers_.empty(), "Table requires at least one column");
}

void Table::new_row() { rows_.emplace_back(); }

void Table::add(const std::string& cell) {
  SPC_CHECK(!rows_.empty(), "Table::add before new_row");
  SPC_CHECK(rows_.back().size() < headers_.size(), "Table row has too many cells");
  rows_.back().push_back(cell);
}

void Table::add(long long v) { add(std::to_string(v)); }

void Table::add(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  add(std::string(buf));
}

void Table::add_percent(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
  add(std::string(buf));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << (c == 0 ? "" : "  ");
      os << s;
      for (std::size_t pad = s.size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < headers_.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace spc
