#include "support/work_queue.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace spc {

WorkStealingQueues::WorkStealingQueues(int num_workers)
    : deques_(static_cast<std::size_t>(num_workers)) {
  SPC_CHECK(num_workers >= 1, "WorkStealingQueues: need at least one worker");
}

void WorkStealingQueues::push(int worker, WorkItem item) {
  // queued_ is incremented BEFORE the item becomes visible: a worker that
  // fails its scan but then sees queued_ > 0 retries instead of sleeping,
  // so the counter may only over-promise, never under-promise.
  queued_.fetch_add(1);
  {
    Deque& d = deques_[static_cast<std::size_t>(worker)];
    LockGuard lock(d.m);
    d.items.push_back(item);
  }
  if (sleepers_.load() > 0) {
    LockGuard lock(sleep_mutex_);
    sleep_cv_.notify_one();
  }
}

bool WorkStealingQueues::try_pop_local(int worker, WorkItem& out) {
  Deque& d = deques_[static_cast<std::size_t>(worker)];
  LockGuard lock(d.m);
  if (d.items.empty()) return false;
  out = d.items.back();
  d.items.pop_back();
  queued_.fetch_sub(1);
  return true;
}

bool WorkStealingQueues::try_steal(int thief, WorkItem& out) {
  const int n = num_workers();
  for (int off = 1; off < n; ++off) {
    Deque& d = deques_[static_cast<std::size_t>((thief + off) % n)];
    LockGuard lock(d.m);
    if (d.items.empty()) continue;
    // Steal the most critical task; among equal priorities take the oldest
    // (lowest index), which is also the victim's coldest cache-wise.
    std::size_t best = 0;
    for (std::size_t i = 1; i < d.items.size(); ++i) {
      if (d.items[i].priority > d.items[best].priority) best = i;
    }
    out = d.items[best];
    d.items.erase(d.items.begin() + static_cast<std::ptrdiff_t>(best));
    queued_.fetch_sub(1);
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool WorkStealingQueues::acquire(int worker, WorkItem& out) {
  for (;;) {
    if (done_.load()) return false;
    if (try_pop_local(worker, out)) return true;
    if (try_steal(worker, out)) return true;
    // Register as a sleeper BEFORE re-checking queued_: a pusher increments
    // queued_ before reading sleepers_, so either it sees us (and notifies
    // under the sleep mutex) or our queued_ re-check in the wait loop sees
    // its increment. Both orders avoid the lost wakeup.
    LockGuard lock(sleep_mutex_);
    sleepers_.fetch_add(1);
    while (queued_.load() <= 0 && !done_.load()) sleep_cv_.wait(sleep_mutex_);
    sleepers_.fetch_sub(1);
  }
}

void WorkStealingQueues::shutdown() {
  done_.store(true);
  LockGuard lock(sleep_mutex_);
  sleep_cv_.notify_all();
}

}  // namespace spc
