#include "support/work_queue.hpp"

#include <limits>
#include <utility>

#include "support/error.hpp"

namespace spc {
namespace {
constexpr i64 kInitialCap = 64;  // power of two
}

WorkStealingQueues::WorkStealingQueues(int num_workers)
    : deques_(static_cast<std::size_t>(num_workers)),
      privates_(static_cast<std::size_t>(num_workers)) {
  SPC_CHECK(num_workers >= 1, "WorkStealingQueues: need at least one worker");
  for (Deque& d : deques_) {
    d.buffers.push_back(std::make_unique<Buffer>(kInitialCap));
    // relaxed: single-threaded construction; the spawn of any worker that
    // could observe the deque happens-after and publishes it.
    d.buf.store(d.buffers.back().get(), std::memory_order_relaxed);
  }
}

void WorkStealingQueues::push_bottom(Deque& d, i64 id) {
  // bottom and buf are written only by the owner, so the owner's own reads
  // need no ordering (relaxed); top is acquire to see the cells freed by
  // thieves' CASes before reusing them.
  const i64 b = d.bottom.load(std::memory_order_relaxed);
  const i64 t = d.top.load(std::memory_order_acquire);
  Buffer* a = d.buf.load(std::memory_order_relaxed);
  if (b - t >= a->cap) {
    // Full: copy the live range [t, b) into a buffer twice the size and
    // publish it. The old buffer is retired but kept alive (a thief may
    // still read it; the values at live positions are unchanged, and its
    // top CAS validates whatever it read).
    auto grown = std::make_unique<Buffer>(a->cap * 2);
    for (i64 i = t; i < b; ++i) {
      grown->cells[i & grown->mask].store(
          a->cells[i & a->mask].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    a = grown.get();
    d.buffers.push_back(std::move(grown));
    d.buf.store(a, std::memory_order_release);
  }
  a->cells[b & a->mask].store(id, std::memory_order_relaxed);
  // Release: a thief that acquires this bottom value also sees the cell.
  d.bottom.store(b + 1, std::memory_order_release);
}

bool WorkStealingQueues::pop_bottom(Deque& d, i64& id) {
  // Owner-private reads (see push_bottom) — relaxed.
  const i64 b = d.bottom.load(std::memory_order_relaxed) - 1;
  Buffer* a = d.buf.load(std::memory_order_relaxed);
  // Publish the intent to take the bottom task BEFORE reading top (seq_cst
  // store/load pair): either a racing thief sees the reduced bottom and
  // backs off, or we see its advanced top and fall into the CAS arbitration.
  d.bottom.store(b, std::memory_order_seq_cst);
  i64 t = d.top.load(std::memory_order_seq_cst);
  if (t > b) {  // empty
    // Restoring bottom is relaxed: a thief reading the stale smaller value
    // only under-estimates the size and backs off — never takes a task.
    d.bottom.store(b + 1, std::memory_order_relaxed);
    return false;
  }
  // relaxed: the owner wrote this cell itself (program order), and a grown
  // buffer was installed by the owner too.
  id = a->cells[b & a->mask].load(std::memory_order_relaxed);
  if (t == b) {
    // Last task: exactly one of owner/thief wins the top CAS.
    const bool won = d.top.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    d.bottom.store(b + 1, std::memory_order_relaxed);
    return won;
  }
  return true;
}

bool WorkStealingQueues::steal_top(Deque& v, i64& id) {
  i64 t = v.top.load(std::memory_order_seq_cst);
  const i64 b = v.bottom.load(std::memory_order_seq_cst);
  if (t >= b) return false;
  Buffer* a = v.buf.load(std::memory_order_acquire);
  // relaxed speculative read: the seq_cst top CAS below validates it — on
  // success nobody else consumed index t, so the value read was the one the
  // owner published before its release store of bottom.
  const i64 cell = a->cells[t & a->mask].load(std::memory_order_relaxed);
  if (!v.top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed)) {
    return false;  // lost the race; caller moves on
  }
  id = cell;
  return true;
}

void WorkStealingQueues::push(int worker, WorkItem item) {
  // queued_ is incremented BEFORE the item becomes visible: a worker that
  // fails its scan but then sees queued_ > 0 retries instead of sleeping,
  // so the counter may only over-promise, never under-promise.
  queued_.fetch_add(1);
  Deque& d = deques_[static_cast<std::size_t>(worker)];
  push_bottom(d, item.id);
  d.prio_hint.store(item.priority, std::memory_order_relaxed);
  if (sleepers_.load() > 0) {
    LockGuard lock(sleep_mutex_);
    sleep_cv_.notify_one();
  }
}

void WorkStealingQueues::push_private(int worker, WorkItem item) {
  // No queued_ bump, no notify: the item is invisible to every other worker
  // by construction, and the owner checks the private stack before parking.
  privates_[static_cast<std::size_t>(worker)].push_back(item);
}

bool WorkStealingQueues::try_steal(int thief, WorkItem& out) {
  const int n = num_workers();
  if (n == 1) return false;
  i64 id = 0;
  // Victim selection by priority hint: prefer the deque advertising the most
  // critical recently-pushed work. The hint is heuristic (relaxed, may be
  // stale) — it orders the attempts, the top CAS guarantees correctness.
  int best = -1;
  i64 best_prio = std::numeric_limits<i64>::min();
  for (int off = 1; off < n; ++off) {
    const int v = (thief + off) % n;
    Deque& d = deques_[static_cast<std::size_t>(v)];
    if (d.bottom.load(std::memory_order_relaxed) -
            d.top.load(std::memory_order_relaxed) <=
        0) {
      continue;
    }
    const i64 p = d.prio_hint.load(std::memory_order_relaxed);
    if (best < 0 || p > best_prio) {
      best_prio = p;
      best = v;
    }
  }
  if (best >= 0 && steal_top(deques_[static_cast<std::size_t>(best)], id)) {
    queued_.fetch_sub(1);
    // relaxed: pure statistics counter, read after the workers joined.
    steals_.fetch_add(1, std::memory_order_relaxed);
    out = WorkItem{id, 0};
    return true;
  }
  // Ring-order fallback: any task beats idling.
  for (int off = 1; off < n; ++off) {
    const int v = (thief + off) % n;
    if (v == best) continue;
    if (steal_top(deques_[static_cast<std::size_t>(v)], id)) {
      queued_.fetch_sub(1);
      steals_.fetch_add(1, std::memory_order_relaxed);
      out = WorkItem{id, 0};
      return true;
    }
  }
  return false;
}

bool WorkStealingQueues::acquire(int worker, WorkItem& out,
                                 AcquireSource* source) {
  std::vector<WorkItem>& priv = privates_[static_cast<std::size_t>(worker)];
  for (;;) {
    if (done_.load()) return false;
    if (!priv.empty()) {
      out = priv.back();
      priv.pop_back();
      if (source != nullptr) *source = AcquireSource::kPrivate;
      return true;
    }
    i64 id = 0;
    if (pop_bottom(deques_[static_cast<std::size_t>(worker)], id)) {
      queued_.fetch_sub(1);
      out = WorkItem{id, 0};
      if (source != nullptr) *source = AcquireSource::kOwn;
      return true;
    }
    if (try_steal(worker, out)) {
      if (source != nullptr) *source = AcquireSource::kSteal;
      return true;
    }
    // Register as a sleeper BEFORE re-checking queued_: a pusher increments
    // queued_ before reading sleepers_, so either it sees us (and notifies
    // under the sleep mutex) or our queued_ re-check in the wait loop sees
    // its increment. Both orders avoid the lost wakeup.
    LockGuard lock(sleep_mutex_);
    sleepers_.fetch_add(1);
    while (queued_.load() <= 0 && !done_.load()) sleep_cv_.wait(sleep_mutex_);
    sleepers_.fetch_sub(1);
  }
}

void WorkStealingQueues::shutdown() {
  done_.store(true);
  LockGuard lock(sleep_mutex_);
  sleep_cv_.notify_all();
}

}  // namespace spc
