// Lock-free work-stealing task queues for the shared-memory parallel
// executor.
//
// Each worker owns a Chase–Lev deque (Chase & Lev, SPAA'05; memory orders
// after Lê et al., PPoPP'13): the owner pushes and pops at the bottom with
// plain atomic stores, thieves remove the oldest task at the top with a
// single CAS. No mutex guards any deque — a task release is a cell store
// plus one release store of the bottom index, and the only lock in the
// subsystem is the sleep mutex, touched exclusively when a worker parks or
// a pusher must wake one.
//
// Priorities (critical-path heights from factor/scheduler.hpp) steer the
// schedule two ways: owners push ready batches in ascending priority order,
// so the LIFO end always pops the most critical task next; and each deque
// publishes a priority hint of its most recently pushed task, which thieves
// use to pick the victim holding the most critical work. A thief then takes
// the victim's *oldest* task — stealing from the opposite end never pulls
// the critical task out from under the owner that is about to run it.
//
// Deque capacity grows by doubling; retired buffers stay alive until the
// queue set is destroyed, so a thief holding a stale buffer pointer always
// reads valid (if superseded) memory — the top CAS rejects any task that was
// concurrently taken.
//
// The park/wake protocol is unchanged from the mutex version and remains
// lost-wakeup-free: a seq_cst counter of queued tasks plus a registered-
// sleeper count, with notifies under the sleep mutex. See
// docs/PARALLEL_EXECUTOR.md for the interleaving argument.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "support/sync.hpp"
#include "support/types.hpp"

namespace spc {

struct WorkItem {
  i64 id = 0;        // caller-defined task id
  i64 priority = 0;  // higher = more critical
};

// Where acquire() found the task — lets the executor count affinity hits
// and spilled-task steals without any extra shared counters.
enum class AcquireSource { kPrivate, kOwn, kSteal };

class WorkStealingQueues {
 public:
  explicit WorkStealingQueues(int num_workers);

  int num_workers() const { return static_cast<int>(deques_.size()); }

  // Pushes onto `worker`'s deque (LIFO end) and wakes a sleeper if any.
  // Owner-only at runtime: once the workers are running, only worker
  // `worker` itself may push to its deque (the lock-free owner push is the
  // point of the structure). The executor seeds all deques from the spawning
  // thread before any worker starts, which is safe because nothing runs
  // concurrently yet.
  void push(int worker, WorkItem item);

  // Pushes onto `worker`'s PRIVATE stack — tasks pinned to that worker by
  // the affinity partition; thieves never see them. Same ownership rule as
  // push(): only worker `worker` itself at runtime (the seeding thread may
  // push pre-spawn). Private items are not counted in the queued_ wake
  // counter and trigger no notify: only the owner can consume them, and the
  // owner checks its private stack before ever parking, so it cannot sleep
  // on private work it pushed itself.
  void push_private(int worker, WorkItem item);

  // Blocking acquire for `worker`: private stack first (LIFO — callers push
  // ready batches in ascending priority, so the most critical pinned task
  // pops first), then own deque (LIFO), then steal the oldest task from the
  // victim advertising the most critical work, else sleep until work
  // arrives. Returns false once shutdown() has been called. When `source`
  // is non-null it reports where the task came from.
  bool acquire(int worker, WorkItem& out, AcquireSource* source = nullptr);

  // Wakes every sleeper and makes all subsequent/blocked acquire() calls
  // return false. Pending tasks are discarded.
  void shutdown();

  // Number of stolen tasks (approximate, for stats/tests).
  i64 steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  // Growable circular buffer of task ids. Cells are relaxed atomics: a thief
  // may read a cell that the owner concurrently republishes, but the top CAS
  // only lets the read count if the slot was still live, per Chase–Lev.
  struct Buffer {
    explicit Buffer(i64 capacity)
        : cap(capacity),
          mask(capacity - 1),
          cells(std::make_unique<spc::atomic<i64>[]>(
              static_cast<std::size_t>(capacity))) {}
    i64 cap;
    i64 mask;  // cap is a power of two
    std::unique_ptr<spc::atomic<i64>[]> cells;
  };

  struct alignas(64) Deque {
    spc::atomic<i64> top{0};
    spc::atomic<i64> bottom{0};
    spc::atomic<Buffer*> buf{nullptr};
    spc::atomic<i64> prio_hint{0};  // priority of the last pushed item
    // Owner-only: current + retired buffers (kept so stale thief reads stay
    // in bounds). Guarded by quiescence, not a lock: only the owner mutates.
    std::vector<std::unique_ptr<Buffer>> buffers;
  };

  void push_bottom(Deque& d, i64 id);
  bool pop_bottom(Deque& d, i64& id);
  // One steal attempt from deque `v`; returns false on empty or lost race.
  bool steal_top(Deque& v, i64& id);
  bool try_steal(int thief, WorkItem& out);

  std::vector<Deque> deques_;
  // Per-worker private stacks (affinity-pinned tasks). Owner-only plain
  // storage: written by the seeding thread pre-spawn (published by thread
  // creation) and by the owner at runtime; never touched by thieves.
  std::vector<std::vector<WorkItem>> privates_;
  spc::atomic<i64> queued_{0};    // tasks currently in some deque
  spc::atomic<int> sleepers_{0};  // workers parked (or committing to park)
  spc::atomic<bool> done_{false};
  spc::atomic<i64> steals_{0};
  Mutex sleep_mutex_;
  CondVar sleep_cv_;
};

}  // namespace spc
