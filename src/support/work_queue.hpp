// Work-stealing task queues for the shared-memory parallel executor.
//
// Each worker owns a deque: new tasks are pushed and popped at the top
// (LIFO, so a worker keeps chasing the data it just produced), while idle
// workers steal from other deques by *priority* — a thief scans the victim's
// deque and removes the most critical task (ties broken toward the bottom,
// i.e. FIFO among equals). Priorities are critical-path heights of the task
// DAG (see factor/scheduler.hpp), so the dependency spine is never starved
// behind bulk work.
//
// Deques are guarded by small per-deque mutexes: the local fast path takes
// one uncontended lock, and thieves never touch a global structure. Idle
// workers park on a condition variable; the wake protocol (seq_cst counter
// of queued tasks + registered-sleeper count, notify under the sleep mutex)
// is lost-wakeup-free — see docs/PARALLEL_EXECUTOR.md for the argument.
//
// Lock discipline is statically checked: the deque contents are GUARDED_BY
// their mutex and a clang -DSPC_ANALYZE=ON build verifies every access
// (see support/thread_annotations.hpp).
#pragma once

#include <atomic>
#include <vector>

#include "support/thread_annotations.hpp"
#include "support/types.hpp"

namespace spc {

struct WorkItem {
  i64 id = 0;        // caller-defined task id
  i64 priority = 0;  // higher = more critical
};

class WorkStealingQueues {
 public:
  explicit WorkStealingQueues(int num_workers);

  int num_workers() const { return static_cast<int>(deques_.size()); }

  // Pushes onto `worker`'s deque (LIFO end) and wakes a sleeper if any.
  // Any thread may push to any deque (the executor seeds all deques before
  // the workers start, and workers push to their own).
  void push(int worker, WorkItem item);

  // Blocking acquire for `worker`: own deque first (LIFO), then steal the
  // highest-priority task from another deque, else sleep until work arrives.
  // Returns false once shutdown() has been called.
  bool acquire(int worker, WorkItem& out);

  // Wakes every sleeper and makes all subsequent/blocked acquire() calls
  // return false. Pending tasks are discarded.
  void shutdown();

  // Number of stolen tasks (approximate, for stats/tests).
  i64 steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  struct alignas(64) Deque {
    Mutex m;
    std::vector<WorkItem> items SPC_GUARDED_BY(m);
  };

  bool try_pop_local(int worker, WorkItem& out);
  bool try_steal(int thief, WorkItem& out);

  std::vector<Deque> deques_;
  std::atomic<i64> queued_{0};    // tasks currently in some deque
  std::atomic<int> sleepers_{0};  // workers parked (or committing to park)
  std::atomic<bool> done_{false};
  std::atomic<i64> steals_{0};
  Mutex sleep_mutex_;
  CondVar sleep_cv_;
};

}  // namespace spc
