// Deterministic fault injection for robustness testing.
//
// A process-global FaultPlan describes, per injection site, a probability,
// a seed, and an optional budget. Decisions are pure functions of
// (site seed, stable key) — the key is a task/block/column id that does not
// depend on thread count or scheduling — so a given plan injects the same
// faults no matter how the factorization is executed. Configure
// programmatically (tests) via set_plan(), or from the environment:
//
//   SPC_FAULT=site:prob:seed[:budget][,site:prob:seed[:budget]...]
//
// where site is one of alloc | kernel | input | budget | deadline (see
// docs/ROBUSTNESS.md for the full grammar). The budget and deadline sites
// drive the governor (src/support/governor.hpp): they simulate memory and
// time pressure so every rung of the facade's degradation ladder is
// deterministically reachable in tests. Injection sites are compiled in only when the library
// is built with -DSPC_FAULTS=ON; in normal builds the SPC_FAULT_POINT /
// SPC_FAULT_POISON macros expand to nothing and the hot path is untouched.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace spc::fault {

enum class Site {
  kAlloc,     // arena / workspace allocation: throws InjectedFault
  kKernel,    // kernel entry (BFAC/BDIV/BMOD): throws InjectedFault
  kInput,     // input values: poisons with NaN or a flipped-sign diagonal
  kBudget,    // memory-budget charge: forces ResourceExhausted (governor)
  kDeadline,  // deadline poll: forces DeadlineExceeded (governor)
};
inline constexpr int kNumSites = 5;

struct SitePlan {
  double prob = 0.0;         // per-draw injection probability in [0,1]
  std::uint64_t seed = 0;    // decision-hash seed
  std::int64_t budget = -1;  // max injections for this site; -1 = unlimited
};

struct FaultPlan {
  SitePlan site[kNumSites];  // indexed by static_cast<int>(Site)
};

// True when injection sites were compiled in (-DSPC_FAULTS=ON).
constexpr bool compiled_in() {
#if SPC_FAULTS_ENABLED
  return true;
#else
  return false;
#endif
}

// Installs a plan and resets all injection counters.
void set_plan(const FaultPlan& plan);

// Disables all sites and resets counters.
void clear();

// Number of faults fired at `site` since the last set_plan()/clear().
std::int64_t injected(Site site);

// Parses the SPC_FAULT grammar into *plan. Returns false (plan untouched)
// on a syntax error. Exposed for tests; configure_from_env() uses it.
bool parse_plan(const std::string& spec, FaultPlan* plan);

// Reads SPC_FAULT from the environment (once per call) and installs it.
// No-op when the variable is unset or malformed.
void configure_from_env();

// Deterministic decision for a stable key. Consumes budget when it fires.
bool should_inject(Site site, std::uint64_t key);

// Throws Error(kInjectedFault, "<what> [injected fault]") when the plan
// fires for (site, key).
void maybe_throw(Site site, std::uint64_t key, const char* what);

// Site::kInput value poisoning: returns NaN or -|v|-1 (keyed choice) when
// the plan fires, else v unchanged.
double maybe_poison(std::uint64_t key, double v);

}  // namespace spc::fault

#if SPC_FAULTS_ENABLED
#define SPC_FAULT_POINT(site, key, what) \
  ::spc::fault::maybe_throw((site), static_cast<std::uint64_t>(key), (what))
#define SPC_FAULT_POISON(key, v) \
  ::spc::fault::maybe_poison(static_cast<std::uint64_t>(key), (v))
#else
#define SPC_FAULT_POINT(site, key, what) ((void)0)
#define SPC_FAULT_POISON(key, v) (v)
#endif
