// Discrete-event simulation of the block fan-out method (paper §2.3) on a
// Paragon-like message-passing machine.
//
// Protocol (mirroring the paper's data-driven SPMD description):
//  * The owner of L_IJ performs all block operations whose destination is
//    L_IJ. A completed block is sent to every processor that executes an
//    operation consuming it (with a CP mapping: one grid row + one column).
//  * Factored diagonal blocks are sent to the owners of their column's
//    off-diagonal blocks (for BDIV).
//  * Domain-mapped block columns (paper §2.3) execute all their source
//    operations on the domain processor; updates to remote root blocks are
//    shipped as ONE aggregated update per (domain processor, destination
//    block), whose apply cost the destination owner pays.
//  * Each processor is single-threaded: it executes ready operations and
//    send/receive software overheads serially, in FIFO order of readiness —
//    the "purely data-driven" scheduling the paper describes (§5).
//
// The sequential baseline (seq_runtime_s) runs the identical cost model on
// one processor with no communication, matching the paper's efficiency
// definition (they measured t_seq with the parallel code on one node).
#pragma once

#include "blocks/block_structure.hpp"
#include "blocks/domains.hpp"
#include "blocks/task_graph.hpp"
#include "mapping/block_map.hpp"
#include "sim/cost_model.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"
#include "support/types.hpp"

namespace spc {

// How a processor picks its next ready operation.
//  * kDataDriven — FIFO in readiness order: the paper's block fan-out code
//    ("a processor acts on received blocks in the order in which they are
//    received", §2.3).
//  * kPriority — the dynamic scheduling the paper proposes as future work
//    (§5): ready operations whose destination lies in an earlier block
//    column run first, since early columns gate the longest dependence
//    chains. Explored by bench/dynamic_scheduling.
enum class SchedulingPolicy { kDataDriven, kPriority };

// `trace`, when non-null, receives every processor busy interval (compute
// and communication) for timeline analysis (sim/trace.hpp).
SimResult simulate_fanout(const BlockStructure& bs, const TaskGraph& tg,
                          const BlockMap& map, const DomainDecomposition& dom,
                          const CostModel& cm = {},
                          SchedulingPolicy policy = SchedulingPolicy::kDataDriven,
                          SimTrace* trace = nullptr);

// Sequential runtime under the cost model (no communication, no fixed
// scheduling loss): the baseline for efficiency.
double sequential_runtime(const BlockStructure& bs, const TaskGraph& tg,
                          const CostModel& cm = {});

}  // namespace spc
