#include "sim/fanout_sim.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "sim/event_queue.hpp"
#include "support/error.hpp"

namespace spc {
namespace {

enum OpKind : int { kOpComplete = 0, kOpMod = 1, kOpApply = 2, kOpSend = 3, kOpRecv = 4 };
enum EventKind : int { kEvOpDone = 0, kEvArrival = 1 };

struct Op {
  OpKind kind;
  i64 id;  // block id / mod id / agg id / message id
};

struct Aggregate {
  block_id dest = 0;
  idx from_proc = 0;
  i64 remaining = 0;
};

struct Message {
  bool is_aggregate = false;
  i64 id = 0;  // block id or aggregate id
  idx to = 0;
  i64 bytes = 0;
};

// A ready operation in a processor's queue. Under data-driven scheduling
// every key is 0 and seq preserves FIFO order; under priority scheduling the
// key is the destination block column (earlier columns first).
struct ReadyOp {
  i64 key;
  i64 seq;
  Op op;
  bool operator>(const ReadyOp& other) const {
    if (key != other.key) return key > other.key;
    return seq > other.seq;
  }
};

using ReadyQueue =
    std::priority_queue<ReadyOp, std::vector<ReadyOp>, std::greater<ReadyOp>>;

struct Simulator {
  const BlockStructure& bs;
  const TaskGraph& tg;
  const BlockMap& map;
  const DomainDecomposition& dom;
  const CostModel& cm;
  SchedulingPolicy policy;
  SimTrace* trace;

  idx nb;
  i64 num_blocks;
  idx num_procs;

  std::vector<idx> owner;         // per block
  std::vector<i64> deps;          // pending apply events per block
  std::vector<bool> complete;     // per block
  std::vector<idx> mod_exec;      // executing proc per mod
  std::vector<i64> mod_pending;   // distinct sources not yet available
  std::vector<i64> mod_agg;       // aggregate id or kNone
  std::vector<Aggregate> aggs;
  // CSR: mods by source block.
  std::vector<i64> src_ptr;
  std::vector<i64> src_mods;

  // Per-processor execution state.
  std::vector<ReadyQueue> fifo;
  i64 ready_seq = 0;
  std::vector<bool> busy;
  std::vector<ProcStats> stats;
  std::vector<Message> messages;
  EventQueue events;
  double now = 0.0;
  // Scratch for consumer dedup.
  std::vector<i64> proc_stamp;
  i64 stamp = 0;

  Simulator(const BlockStructure& bs_in, const TaskGraph& tg_in,
            const BlockMap& map_in, const DomainDecomposition& dom_in,
            const CostModel& cm_in, SchedulingPolicy policy_in, SimTrace* trace_in)
      : bs(bs_in), tg(tg_in), map(map_in), dom(dom_in), cm(cm_in),
        policy(policy_in), trace(trace_in) {
    nb = bs.num_block_cols();
    num_blocks = tg.num_blocks();
    num_procs = map.grid.size();
    setup();
  }

  idx width_of(idx col) const { return bs.part.width(col); }

  void setup() {
    owner.resize(static_cast<std::size_t>(num_blocks));
    for (block_id b = 0; b < num_blocks; ++b) {
      owner[static_cast<std::size_t>(b)] =
          map.owner(tg.row_of_block[static_cast<std::size_t>(b)],
                    tg.col_of_block[static_cast<std::size_t>(b)], dom);
    }

    const i64 num_mods = static_cast<i64>(tg.mods.size());
    mod_exec.resize(static_cast<std::size_t>(num_mods));
    mod_pending.resize(static_cast<std::size_t>(num_mods));
    mod_agg.assign(static_cast<std::size_t>(num_mods), kNone);
    deps.assign(static_cast<std::size_t>(num_blocks), 0);
    std::unordered_map<i64, i64> agg_index;  // (dest * P + proc) -> agg id

    for (i64 m = 0; m < num_mods; ++m) {
      const BlockMod& mod = tg.mods[static_cast<std::size_t>(m)];
      const bool domain_src = dom.is_domain_col(mod.col_k);
      const idx dest_owner = owner[static_cast<std::size_t>(mod.dest)];
      const idx exec = domain_src ? dom.domain_proc[mod.col_k] : dest_owner;
      mod_exec[static_cast<std::size_t>(m)] = exec;
      mod_pending[static_cast<std::size_t>(m)] = mod.src_a == mod.src_b ? 1 : 2;
      if (domain_src && exec != dest_owner) {
        const i64 key = mod.dest * static_cast<i64>(num_procs) + exec;
        auto [it, inserted] = agg_index.try_emplace(key, static_cast<i64>(aggs.size()));
        if (inserted) {
          aggs.push_back(Aggregate{mod.dest, exec, 0});
          ++deps[static_cast<std::size_t>(mod.dest)];  // one apply per aggregate
        }
        mod_agg[static_cast<std::size_t>(m)] = it->second;
        ++aggs[static_cast<std::size_t>(it->second)].remaining;
      } else {
        ++deps[static_cast<std::size_t>(mod.dest)];  // direct apply at owner
      }
    }
    // Off-diagonal blocks additionally wait for their factored diagonal.
    for (block_id b = nb; b < num_blocks; ++b) ++deps[static_cast<std::size_t>(b)];

    // CSR of mods by source block.
    src_ptr.assign(static_cast<std::size_t>(num_blocks) + 1, 0);
    for (const BlockMod& mod : tg.mods) {
      ++src_ptr[static_cast<std::size_t>(mod.src_a) + 1];
      if (mod.src_b != mod.src_a) ++src_ptr[static_cast<std::size_t>(mod.src_b) + 1];
    }
    for (block_id b = 0; b < num_blocks; ++b) {
      src_ptr[static_cast<std::size_t>(b) + 1] += src_ptr[static_cast<std::size_t>(b)];
    }
    src_mods.resize(static_cast<std::size_t>(src_ptr[static_cast<std::size_t>(num_blocks)]));
    {
      std::vector<i64> cursor(src_ptr.begin(), src_ptr.end() - 1);
      for (i64 m = 0; m < num_mods; ++m) {
        const BlockMod& mod = tg.mods[static_cast<std::size_t>(m)];
        src_mods[static_cast<std::size_t>(cursor[static_cast<std::size_t>(mod.src_a)]++)] = m;
        if (mod.src_b != mod.src_a) {
          src_mods[static_cast<std::size_t>(cursor[static_cast<std::size_t>(mod.src_b)]++)] = m;
        }
      }
    }

    complete.assign(static_cast<std::size_t>(num_blocks), false);
    fifo.resize(static_cast<std::size_t>(num_procs));
    busy.assign(static_cast<std::size_t>(num_procs), false);
    stats.assign(static_cast<std::size_t>(num_procs), ProcStats{});
    proc_stamp.assign(static_cast<std::size_t>(num_procs), -1);
  }

  double op_cost(const Op& op) const {
    switch (op.kind) {
      case kOpComplete: {
        const block_id b = op.id;
        const idx col = tg.col_of_block[static_cast<std::size_t>(b)];
        const idx w = width_of(col);
        const idx min_dim = is_diag_block(bs, b)
                                ? w
                                : std::min<idx>(w, tg.rows_of_block[static_cast<std::size_t>(b)]);
        return cm.op_seconds(tg.completion_flops[static_cast<std::size_t>(b)], min_dim);
      }
      case kOpMod: {
        const BlockMod& m = tg.mods[static_cast<std::size_t>(op.id)];
        const idx w = width_of(m.col_k);
        const idx min_dim = std::min(
            {w, tg.rows_of_block[static_cast<std::size_t>(m.src_a)],
             tg.rows_of_block[static_cast<std::size_t>(m.src_b)]});
        return cm.op_seconds(m.flops, min_dim);
      }
      case kOpApply: {
        const Aggregate& a = aggs[static_cast<std::size_t>(op.id)];
        const idx rows = tg.rows_of_block[static_cast<std::size_t>(a.dest)];
        const idx cols = width_of(tg.col_of_block[static_cast<std::size_t>(a.dest)]);
        return cm.op_seconds(static_cast<i64>(rows) * cols, std::min(rows, cols));
      }
      case kOpSend:
        return cm.send_cpu_seconds(messages[static_cast<std::size_t>(op.id)].bytes);
      case kOpRecv:
        return cm.recv_cpu_seconds(messages[static_cast<std::size_t>(op.id)].bytes);
    }
    SPC_CHECK(false, "op_cost: unknown op kind");
  }

  bool is_comm_op(const Op& op) const {
    return op.kind == kOpSend || op.kind == kOpRecv;
  }

  // Priority key: communication first, then ops gating the earliest block
  // column (which heads the longest remaining dependence chains).
  i64 priority_key(const Op& op) const {
    if (policy == SchedulingPolicy::kDataDriven) return 0;
    switch (op.kind) {
      case kOpSend:
      case kOpRecv:
        return -1;
      case kOpComplete:
        return tg.col_of_block[static_cast<std::size_t>(op.id)];
      case kOpMod:
        return tg.col_of_block[static_cast<std::size_t>(
            tg.mods[static_cast<std::size_t>(op.id)].dest)];
      case kOpApply:
        return tg.col_of_block[static_cast<std::size_t>(
            aggs[static_cast<std::size_t>(op.id)].dest)];
    }
    return 0;
  }

  void enqueue(idx proc, Op op) {
    fifo[static_cast<std::size_t>(proc)].push(ReadyOp{priority_key(op), ready_seq++, op});
    if (!busy[static_cast<std::size_t>(proc)]) start_next(proc);
  }

  void start_next(idx proc) {
    auto& q = fifo[static_cast<std::size_t>(proc)];
    if (q.empty()) {
      busy[static_cast<std::size_t>(proc)] = false;
      return;
    }
    const Op op = q.top().op;
    q.pop();
    busy[static_cast<std::size_t>(proc)] = true;
    const double cost = op_cost(op);
    ProcStats& ps = stats[static_cast<std::size_t>(proc)];
    if (is_comm_op(op)) {
      ps.comm_s += cost;
    } else {
      ps.compute_s += cost;
    }
    switch (op.kind) {
      case kOpComplete: ++ps.ops_completion; break;
      case kOpMod: ++ps.ops_mod; break;
      case kOpApply: ++ps.ops_apply; break;
      case kOpRecv: ++ps.msgs_received; break;
      case kOpSend: break;
    }
    if (trace != nullptr) {
      trace->record(proc, now, now + cost,
                    is_comm_op(op) ? TraceKind::kComm : TraceKind::kCompute);
    }
    events.push(now + cost, kEvOpDone, proc, encode_op(op));
  }

  static i64 encode_op(Op op) { return static_cast<i64>(op.kind) + op.id * 8; }
  static Op decode_op(i64 v) { return Op{static_cast<OpKind>(v % 8), v / 8}; }

  i64 block_message_bytes(block_id b) const {
    return block_bytes(tg.rows_of_block[static_cast<std::size_t>(b)],
                       width_of(tg.col_of_block[static_cast<std::size_t>(b)]));
  }

  void send_message(idx from, Message msg) {
    const i64 id = static_cast<i64>(messages.size());
    messages.push_back(msg);
    stats[static_cast<std::size_t>(from)].msgs_sent += 1;
    stats[static_cast<std::size_t>(from)].bytes_sent += msg.bytes;
    enqueue(from, Op{kOpSend, id});
  }

  // A block became available at proc q (local completion or arrival).
  void block_available(idx q, block_id b) {
    for (i64 k = src_ptr[static_cast<std::size_t>(b)]; k < src_ptr[static_cast<std::size_t>(b) + 1]; ++k) {
      const i64 m = src_mods[static_cast<std::size_t>(k)];
      if (mod_exec[static_cast<std::size_t>(m)] != q) continue;
      if (--mod_pending[static_cast<std::size_t>(m)] == 0) enqueue(q, Op{kOpMod, m});
    }
    if (is_diag_block(bs, b)) {
      const idx col = static_cast<idx>(b);
      for (i64 e = bs.blkptr[col]; e < bs.blkptr[col + 1]; ++e) {
        const block_id ob = nb + e;
        if (owner[static_cast<std::size_t>(ob)] != q) continue;
        dec_deps(ob);
      }
    }
  }

  void dec_deps(block_id b) {
    SPC_CHECK(deps[static_cast<std::size_t>(b)] > 0, "simulate_fanout: deps underflow");
    if (--deps[static_cast<std::size_t>(b)] == 0) {
      enqueue(owner[static_cast<std::size_t>(b)], Op{kOpComplete, b});
    }
  }

  void on_block_complete(idx p, block_id b) {
    complete[static_cast<std::size_t>(b)] = true;
    block_available(p, b);

    // Consumers: exec procs of mods sourced by b, plus (for diagonal blocks)
    // owners of the column's off-diagonal blocks.
    ++stamp;
    proc_stamp[static_cast<std::size_t>(p)] = stamp;  // never send to self
    const i64 bytes = block_message_bytes(b);
    auto consider = [&](idx q) {
      if (proc_stamp[static_cast<std::size_t>(q)] == stamp) return;
      proc_stamp[static_cast<std::size_t>(q)] = stamp;
      send_message(p, Message{false, b, q, bytes});
    };
    for (i64 k = src_ptr[static_cast<std::size_t>(b)]; k < src_ptr[static_cast<std::size_t>(b) + 1]; ++k) {
      consider(mod_exec[static_cast<std::size_t>(src_mods[static_cast<std::size_t>(k)])]);
    }
    if (is_diag_block(bs, b)) {
      const idx col = static_cast<idx>(b);
      for (i64 e = bs.blkptr[col]; e < bs.blkptr[col + 1]; ++e) {
        consider(owner[static_cast<std::size_t>(nb + e)]);
      }
    }
  }

  void on_mod_done(idx p, i64 m) {
    const BlockMod& mod = tg.mods[static_cast<std::size_t>(m)];
    const i64 agg = mod_agg[static_cast<std::size_t>(m)];
    if (agg == kNone) {
      dec_deps(mod.dest);
    } else {
      Aggregate& a = aggs[static_cast<std::size_t>(agg)];
      if (--a.remaining == 0) {
        const i64 bytes =
            block_bytes(tg.rows_of_block[static_cast<std::size_t>(a.dest)],
                        width_of(tg.col_of_block[static_cast<std::size_t>(a.dest)]));
        send_message(p, Message{true, agg, owner[static_cast<std::size_t>(a.dest)], bytes});
      }
    }
  }

  void on_op_done(idx p, Op op) {
    switch (op.kind) {
      case kOpComplete:
        on_block_complete(p, op.id);
        break;
      case kOpMod:
        on_mod_done(p, op.id);
        break;
      case kOpApply:
        dec_deps(aggs[static_cast<std::size_t>(op.id)].dest);
        break;
      case kOpSend: {
        const Message& msg = messages[static_cast<std::size_t>(op.id)];
        events.push(now + cm.wire_seconds_routed(msg.bytes, p, msg.to), kEvArrival,
                    msg.to, op.id);
        break;
      }
      case kOpRecv: {
        const Message& msg = messages[static_cast<std::size_t>(op.id)];
        if (msg.is_aggregate) {
          enqueue(p, Op{kOpApply, msg.id});
        } else {
          block_available(p, msg.id);
        }
        break;
      }
    }
  }

  SimResult run() {
    // Seed: blocks with no dependencies (diagonal blocks of columns that
    // receive no modifications).
    for (block_id b = 0; b < num_blocks; ++b) {
      if (deps[static_cast<std::size_t>(b)] == 0) {
        enqueue(owner[static_cast<std::size_t>(b)], Op{kOpComplete, b});
      }
    }
    while (!events.empty()) {
      const SimEvent ev = events.pop();
      now = ev.time;
      if (ev.kind == kEvOpDone) {
        on_op_done(ev.proc, decode_op(ev.payload));
        start_next(ev.proc);
      } else {
        enqueue(ev.proc, Op{kOpRecv, ev.payload});
      }
    }
    for (block_id b = 0; b < num_blocks; ++b) {
      SPC_CHECK(complete[static_cast<std::size_t>(b)],
                "simulate_fanout: deadlock — block never completed");
    }
    SimResult result;
    result.runtime_s = now;
    result.num_procs = num_procs;
    result.procs = stats;
    return result;
  }
};

}  // namespace

double sequential_runtime(const BlockStructure& bs, const TaskGraph& tg,
                          const CostModel& cm) {
  double total = 0.0;
  for (block_id b = 0; b < tg.num_blocks(); ++b) {
    const idx col = tg.col_of_block[static_cast<std::size_t>(b)];
    const idx w = bs.part.width(col);
    const idx min_dim =
        is_diag_block(bs, b)
            ? w
            : std::min<idx>(w, tg.rows_of_block[static_cast<std::size_t>(b)]);
    total += cm.op_seconds(tg.completion_flops[static_cast<std::size_t>(b)], min_dim);
  }
  for (const BlockMod& m : tg.mods) {
    const idx w = bs.part.width(m.col_k);
    const idx min_dim = std::min({w, tg.rows_of_block[static_cast<std::size_t>(m.src_a)],
                                  tg.rows_of_block[static_cast<std::size_t>(m.src_b)]});
    total += cm.op_seconds(m.flops, min_dim);
  }
  return total;
}

SimResult simulate_fanout(const BlockStructure& bs, const TaskGraph& tg,
                          const BlockMap& map, const DomainDecomposition& dom,
                          const CostModel& cm, SchedulingPolicy policy,
                          SimTrace* trace) {
  Simulator sim(bs, tg, map, dom, cm, policy, trace);
  SimResult result = sim.run();
  result.seq_runtime_s = sequential_runtime(bs, tg, cm);
  return result;
}

}  // namespace spc
