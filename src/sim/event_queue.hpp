// Deterministic discrete-event queue: events at equal times are delivered in
// insertion order (a strict total order, so simulations are reproducible).
#pragma once

#include <queue>
#include <vector>

#include "support/types.hpp"

namespace spc {

struct SimEvent {
  double time = 0.0;
  i64 seq = 0;       // tie-breaker, assigned by the queue
  int kind = 0;      // interpreted by the simulation
  idx proc = kNone;
  i64 payload = 0;
};

class EventQueue {
 public:
  void push(double time, int kind, idx proc, i64 payload);
  bool empty() const { return heap_.empty(); }
  SimEvent pop();

 private:
  struct Later {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<SimEvent, std::vector<SimEvent>, Later> heap_;
  i64 next_seq_ = 0;
};

}  // namespace spc
