#include "sim/event_queue.hpp"

#include "support/error.hpp"

namespace spc {

void EventQueue::push(double time, int kind, idx proc, i64 payload) {
  SPC_CHECK(time >= 0.0, "EventQueue: negative time");
  heap_.push(SimEvent{time, next_seq_++, kind, proc, payload});
}

SimEvent EventQueue::pop() {
  SPC_CHECK(!heap_.empty(), "EventQueue: pop from empty queue");
  SimEvent e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace spc
