#include "sim/column_fanout_sim.hpp"

#include "sim/cost_model.hpp"
#include "support/error.hpp"

namespace spc {

CommVolume column_fanout_comm_volume(const BlockStructure& bs, idx num_procs) {
  SPC_CHECK(num_procs >= 1, "column_fanout_comm_volume: need processors");
  CommVolume v;
  if (num_procs == 1) return v;
  // True 1-D column fan-out works at COLUMN granularity: column j (cyclic
  // ownership j mod P) is sent to every processor owning a column of
  // struct(j). Columns within a block column share the chunk's row list, so
  // we count the distinct owners of the shared list once per chunk and add
  // the within-chunk destinations per member column.
  std::vector<idx> stamp(static_cast<std::size_t>(num_procs), kNone);
  idx tick = 0;
  for (idx k = 0; k < bs.num_block_cols(); ++k) {
    const idx first = bs.part.first_col[k];
    const idx width = bs.part.width(k);
    const i64 shared_rows = bs.rowptr[k + 1] - bs.rowptr[k];
    for (idx c = 0; c < width; ++c) {
      const idx col = first + c;
      const idx owner = col % num_procs;
      // struct(col) = later columns of the chunk + the shared row list.
      const i64 struct_len = (width - 1 - c) + shared_rows;
      if (struct_len == 0) continue;
      // Destinations: owners of the later in-chunk columns (cyclic, hence
      // min(width-1-c, P) distinct, minus overlap which we approximate by
      // counting exactly with the stamp array) plus the shared owners.
      ++tick;
      i64 dests = 0;
      for (idx c2 = c + 1; c2 < width; ++c2) {
        const idx q = (first + c2) % num_procs;
        if (stamp[static_cast<std::size_t>(q)] != tick) {
          stamp[static_cast<std::size_t>(q)] = tick;
          ++dests;
        }
      }
      for (i64 r = bs.rowptr[k]; r < bs.rowptr[k + 1]; ++r) {
        const idx q = bs.rowidx[r] % num_procs;
        if (stamp[static_cast<std::size_t>(q)] != tick) {
          stamp[static_cast<std::size_t>(q)] = tick;
          ++dests;
        }
      }
      if (stamp[static_cast<std::size_t>(owner)] == tick) --dests;  // no self-send
      if (dests <= 0) continue;
      // 8 bytes per value + 4 per row index + small header per message.
      const i64 col_bytes = 12 * struct_len + 32;
      v.messages += dests;
      v.bytes += dests * col_bytes;
    }
  }
  return v;
}

}  // namespace spc
