#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace spc {

void SimTrace::record(idx proc, double start, double end, TraceKind kind) {
  SPC_CHECK(end >= start && start >= 0.0, "SimTrace: invalid interval");
  intervals_.push_back(TraceInterval{proc, start, end, kind});
}

double SimTrace::busy_seconds(idx proc) const {
  double total = 0.0;
  for (const TraceInterval& iv : intervals_) {
    if (iv.proc == proc) total += iv.end - iv.start;
  }
  return total;
}

std::vector<std::vector<double>> SimTrace::utilization(idx num_procs, double horizon,
                                                       idx buckets) const {
  SPC_CHECK(num_procs >= 1 && buckets >= 1 && horizon > 0.0,
            "SimTrace::utilization: bad arguments");
  std::vector<std::vector<double>> busy(
      static_cast<std::size_t>(num_procs),
      std::vector<double>(static_cast<std::size_t>(buckets), 0.0));
  const double dt = horizon / buckets;
  for (const TraceInterval& iv : intervals_) {
    if (iv.proc < 0 || iv.proc >= num_procs) continue;
    const idx b0 = std::min<idx>(buckets - 1, static_cast<idx>(iv.start / dt));
    const idx b1 = std::min<idx>(buckets - 1, static_cast<idx>(iv.end / dt));
    for (idx b = b0; b <= b1; ++b) {
      const double lo = std::max(iv.start, b * dt);
      const double hi = std::min(iv.end, (b + 1) * dt);
      if (hi > lo) busy[static_cast<std::size_t>(iv.proc)][static_cast<std::size_t>(b)] += hi - lo;
    }
  }
  for (auto& row : busy) {
    for (double& v : row) v = std::min(1.0, v / dt);
  }
  return busy;
}

std::vector<double> SimTrace::machine_profile(idx num_procs, double horizon,
                                              idx buckets) const {
  const auto util = utilization(num_procs, horizon, buckets);
  std::vector<double> profile(static_cast<std::size_t>(buckets), 0.0);
  for (const auto& row : util) {
    for (std::size_t b = 0; b < row.size(); ++b) profile[b] += row[b];
  }
  for (double& v : profile) v /= static_cast<double>(num_procs);
  return profile;
}

void SimTrace::print_timeline(std::ostream& os, idx num_procs, double horizon,
                              idx buckets, idx max_rows) const {
  static const char kLevels[] = " .:-=+#%@";
  const auto util = utilization(num_procs, horizon, buckets);
  const idx rows = std::min(num_procs, max_rows);
  os << "utilization timeline (" << num_procs << " procs, "
     << horizon * 1e3 << " ms horizon; rows sampled):\n";
  for (idx r = 0; r < rows; ++r) {
    const idx proc = static_cast<idx>(static_cast<i64>(r) * num_procs / rows);
    os << "P" << proc << (proc < 10 ? "   |" : (proc < 100 ? "  |" : " |"));
    for (double v : util[static_cast<std::size_t>(proc)]) {
      const int level = std::min(8, static_cast<int>(v * 8.999));
      os << kLevels[level];
    }
    os << "|\n";
  }
  const std::vector<double> profile = machine_profile(num_procs, horizon, buckets);
  os << "mean" << " |";
  for (double v : profile) {
    const int level = std::min(8, static_cast<int>(v * 8.999));
    os << kLevels[level];
  }
  os << "|\n";
}

}  // namespace spc
