// Communication-volume model of the traditional 1-D column fan-out method,
// used to reproduce the paper's §1 scalability claim: 1-D communication
// volume grows linearly in P while the 2-D block method grows as sqrt(P).
//
// In column fan-out, each completed block column is sent to every processor
// owning a column it modifies (columns are mapped cyclically). We count the
// exact volume for a given block structure; the 2-D volume comes from the
// fan-out simulator's byte counts.
#pragma once

#include "blocks/block_structure.hpp"
#include "support/types.hpp"

namespace spc {

struct CommVolume {
  i64 messages = 0;
  i64 bytes = 0;
};

// 1-D cyclic column mapping over `num_procs` processors.
CommVolume column_fanout_comm_volume(const BlockStructure& bs, idx num_procs);

}  // namespace spc
