#include "sim/cost_model.hpp"

#include <cmath>
#include <cstdlib>

#include "support/error.hpp"

namespace spc {

double CostModel::rate_flops_per_s(idx min_dim) const {
  SPC_CHECK(min_dim >= 1, "rate_flops_per_s: dimension must be positive");
  const double r =
      min_mflops + (peak_mflops - min_mflops) *
                       (1.0 - std::exp(-static_cast<double>(min_dim) / rate_dim_scale));
  return r * 1e6;
}

double CostModel::op_seconds(i64 flops, idx min_dim) const {
  return (static_cast<double>(flops) + fixed_op_flops) / rate_flops_per_s(min_dim);
}

double CostModel::send_cpu_seconds(i64 bytes) const {
  return send_overhead_s + static_cast<double>(bytes) * cpu_per_byte_s;
}

double CostModel::recv_cpu_seconds(i64 bytes) const {
  return recv_overhead_s + static_cast<double>(bytes) * cpu_per_byte_s;
}

double CostModel::wire_seconds(i64 bytes) const {
  return msg_latency_s + static_cast<double>(bytes) / bandwidth_bytes_per_s;
}

double CostModel::wire_seconds_routed(i64 bytes, idx from, idx to) const {
  double t = wire_seconds(bytes);
  if (mesh_cols > 0) {
    const idx hops = std::abs(from / mesh_cols - to / mesh_cols) +
                     std::abs(from % mesh_cols - to % mesh_cols);
    t += static_cast<double>(hops) * per_hop_latency_s;
  }
  return t;
}

i64 block_bytes(idx rows, idx cols) {
  return 8 * static_cast<i64>(rows) * cols + 4 * static_cast<i64>(rows) + 32;
}

}  // namespace spc
