// Per-processor accounting and aggregate statistics for the simulated
// machine, mirroring the instrumentation the paper reports (§5): compute
// time, communication (send/recv software) time, idle time, message counts
// and volumes.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace spc {

struct ProcStats {
  double compute_s = 0.0;  // BFAC/BDIV/BMOD/aggregate-apply execution
  double comm_s = 0.0;     // send + receive software overhead
  i64 msgs_sent = 0;
  i64 bytes_sent = 0;
  // Operation counts, for conservation checks and instrumentation.
  i64 ops_completion = 0;  // BFAC + BDIV
  i64 ops_mod = 0;         // BMOD
  i64 ops_apply = 0;       // aggregated-update applications
  i64 msgs_received = 0;
};

struct SimResult {
  double runtime_s = 0.0;      // parallel makespan
  double seq_runtime_s = 0.0;  // same cost model on one processor, no comm
  idx num_procs = 0;
  std::vector<ProcStats> procs;

  i64 total_msgs() const;
  i64 total_bytes() const;
  double total_compute_s() const;
  double total_comm_s() const;
  double total_idle_s() const;  // P * runtime - compute - comm

  // Parallel efficiency t_seq / (P * t_par), the paper's §3.2 definition.
  double efficiency() const;
  // Achieved Mflops given the matrix's sequential operation count (the paper
  // divides the best-known sequential op count by parallel runtime).
  double mflops(i64 sequential_flops) const;
  // Fraction of aggregate processor time spent in communication overhead.
  double comm_fraction() const;
};

}  // namespace spc
