// Calibrated cost model of an Intel Paragon node (paper §3.1):
//   * message latency 50 us, effective bandwidth ~40 MB/s for the message
//     sizes the code uses;
//   * Level-3 BLAS block kernels run at 20-40 Mflops depending on operand
//     sizes — modeled as a saturating rate in the smallest operand dimension;
//   * each block operation carries a fixed overhead equivalent to ~1000
//     flops (the constant the paper bakes into its work model).
#pragma once

#include "support/types.hpp"

namespace spc {

struct CostModel {
  double peak_mflops = 40.0;
  double min_mflops = 20.0;
  double rate_dim_scale = 24.0;   // rate(d) = min + (peak-min)*(1 - exp(-d/scale))
  double fixed_op_flops = 1000.0;
  double msg_latency_s = 50e-6;
  double bandwidth_bytes_per_s = 40e6;
  double send_overhead_s = 50e-6;  // sender CPU occupancy per message
  double recv_overhead_s = 50e-6;  // receiver CPU occupancy per message
  // Per-byte CPU cost on each end (OSF/1 copies messages through the kernel;
  // ~80 MB/s memcpy on the i860). This is what puts software communication
  // cost in the 5-20%-of-runtime range the paper measures.
  double cpu_per_byte_s = 12.5e-9;

  // CPU occupancy of sending / receiving one message of `bytes`.
  double send_cpu_seconds(i64 bytes) const;
  double recv_cpu_seconds(i64 bytes) const;

  // Optional 2-D mesh topology (the Paragon is a 2-D mesh with wormhole
  // dimension-ordered routing): when mesh_cols > 0, wire time adds
  // per_hop_latency_s per Manhattan hop between the endpoints' mesh
  // positions (node p at (p / mesh_cols, p % mesh_cols)). The per-hop cost
  // on real wormhole-routed meshes is tens of nanoseconds, which is why the
  // paper can treat the network as flat — bench/topology_ablation verifies
  // that insensitivity.
  idx mesh_cols = 0;
  double per_hop_latency_s = 40e-9;
  double wire_seconds_routed(i64 bytes, idx from, idx to) const;

  // Effective flop rate for a block op whose smallest operand dimension is d.
  double rate_flops_per_s(idx min_dim) const;
  // Execution time of a block op.
  double op_seconds(i64 flops, idx min_dim) const;
  // Time on the wire (excluding the send/recv CPU overheads).
  double wire_seconds(i64 bytes) const;
};

// Bytes of a dense m x n double-precision block plus a small header of row
// indices (what the fan-out method actually ships).
i64 block_bytes(idx rows, idx cols);

}  // namespace spc
