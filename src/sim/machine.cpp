#include "sim/machine.hpp"

#include "support/error.hpp"

namespace spc {

i64 SimResult::total_msgs() const {
  i64 t = 0;
  for (const ProcStats& p : procs) t += p.msgs_sent;
  return t;
}

i64 SimResult::total_bytes() const {
  i64 t = 0;
  for (const ProcStats& p : procs) t += p.bytes_sent;
  return t;
}

double SimResult::total_compute_s() const {
  double t = 0.0;
  for (const ProcStats& p : procs) t += p.compute_s;
  return t;
}

double SimResult::total_comm_s() const {
  double t = 0.0;
  for (const ProcStats& p : procs) t += p.comm_s;
  return t;
}

double SimResult::total_idle_s() const {
  return static_cast<double>(num_procs) * runtime_s - total_compute_s() - total_comm_s();
}

double SimResult::efficiency() const {
  SPC_CHECK(runtime_s > 0.0 && num_procs > 0, "SimResult: invalid runtime");
  return seq_runtime_s / (static_cast<double>(num_procs) * runtime_s);
}

double SimResult::mflops(i64 sequential_flops) const {
  SPC_CHECK(runtime_s > 0.0, "SimResult: invalid runtime");
  return static_cast<double>(sequential_flops) / runtime_s / 1e6;
}

double SimResult::comm_fraction() const {
  const double denom = static_cast<double>(num_procs) * runtime_s;
  return denom > 0.0 ? total_comm_s() / denom : 0.0;
}

}  // namespace spc
