// Critical-path analysis of the block factorization task DAG (paper §5,
// after Rothberg's thesis [11]): the longest chain of dependent block
// operations under the cost model, ignoring processor counts and
// communication. Updates into one destination block serialize (its owner
// applies them one at a time); independent blocks proceed concurrently.
//
// This gives the concurrency-limited lower bound on parallel runtime that
// the paper uses to argue load balance — not parallelism — was the
// bottleneck (e.g. ~50% headroom for BCSSTK15 on P=100).
#pragma once

#include "blocks/block_structure.hpp"
#include "blocks/task_graph.hpp"
#include "sim/cost_model.hpp"
#include "support/types.hpp"

namespace spc {

struct CriticalPathResult {
  double critical_path_s = 0.0;  // longest dependent chain
  double seq_runtime_s = 0.0;    // total work under the same cost model
  // Efficiency upper bound from concurrency alone:
  // t_seq / (P * max(t_cp, t_seq / P)).
  double efficiency_bound(idx num_procs) const;
  // Upper bound on achievable Mflops for a given op count and P.
  double mflops_bound(i64 sequential_flops, idx num_procs) const;
};

CriticalPathResult critical_path(const BlockStructure& bs, const TaskGraph& tg,
                                 const CostModel& cm = {});

}  // namespace spc
