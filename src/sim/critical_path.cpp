#include "sim/critical_path.hpp"

#include <algorithm>

#include "sim/fanout_sim.hpp"
#include "support/error.hpp"

namespace spc {

double CriticalPathResult::efficiency_bound(idx num_procs) const {
  const double par_bound =
      std::max(critical_path_s, seq_runtime_s / static_cast<double>(num_procs));
  return seq_runtime_s / (static_cast<double>(num_procs) * par_bound);
}

double CriticalPathResult::mflops_bound(i64 sequential_flops, idx num_procs) const {
  const double par_bound =
      std::max(critical_path_s, seq_runtime_s / static_cast<double>(num_procs));
  return static_cast<double>(sequential_flops) / par_bound / 1e6;
}

CriticalPathResult critical_path(const BlockStructure& bs, const TaskGraph& tg,
                                 const CostModel& cm) {
  const idx nb = bs.num_block_cols();
  // acc[b]: completion time of the serialized update stream into block b so
  // far; ready[b]: time block b itself is complete (after BFAC/BDIV).
  std::vector<double> acc(static_cast<std::size_t>(tg.num_blocks()), 0.0);
  std::vector<double> ready(static_cast<std::size_t>(tg.num_blocks()), 0.0);

  // Mods are grouped by source column in ascending order; sweep columns,
  // finishing each column's blocks before streaming its updates outward.
  std::size_t mod_cursor = 0;
  for (idx k = 0; k < nb; ++k) {
    const idx w = bs.part.width(k);
    // BFAC(K,K) after all updates into the diagonal block.
    const double bfac_cost = cm.op_seconds(tg.completion_flops[static_cast<std::size_t>(k)], w);
    ready[static_cast<std::size_t>(k)] = acc[static_cast<std::size_t>(k)] + bfac_cost;
    // BDIV(I,K) after the block's updates and the factored diagonal.
    for (i64 e = bs.blkptr[k]; e < bs.blkptr[k + 1]; ++e) {
      const block_id b = nb + e;
      const idx min_dim = std::min<idx>(w, bs.blkcnt[e]);
      const double cost =
          cm.op_seconds(tg.completion_flops[static_cast<std::size_t>(b)], min_dim);
      ready[static_cast<std::size_t>(b)] =
          std::max(acc[static_cast<std::size_t>(b)], ready[static_cast<std::size_t>(k)]) + cost;
    }
    // Stream this column's BMODs into their destinations (serialized per
    // destination, in source order).
    while (mod_cursor < tg.mods.size() && tg.mods[mod_cursor].col_k == k) {
      const BlockMod& m = tg.mods[mod_cursor];
      const idx min_dim =
          std::min({w, tg.rows_of_block[static_cast<std::size_t>(m.src_a)],
                    tg.rows_of_block[static_cast<std::size_t>(m.src_b)]});
      const double cost = cm.op_seconds(m.flops, min_dim);
      const double src_ready = std::max(ready[static_cast<std::size_t>(m.src_a)],
                                        ready[static_cast<std::size_t>(m.src_b)]);
      acc[static_cast<std::size_t>(m.dest)] =
          std::max(acc[static_cast<std::size_t>(m.dest)], src_ready) + cost;
      ++mod_cursor;
    }
  }
  SPC_CHECK(mod_cursor == tg.mods.size(), "critical_path: mods not column-sorted");

  CriticalPathResult out;
  for (double t : ready) out.critical_path_s = std::max(out.critical_path_s, t);
  out.seq_runtime_s = sequential_runtime(bs, tg, cm);
  return out;
}

}  // namespace spc
