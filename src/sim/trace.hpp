// Execution tracing for the fan-out simulator: per-processor busy intervals
// classified as compute vs communication, with an ASCII utilization timeline
// — the instrumentation behind the paper's §5 observation that idle waiting,
// not communication, dominates the non-compute time.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace spc {

enum class TraceKind : char { kCompute = 'c', kComm = 'm' };

struct TraceInterval {
  idx proc;
  double start;
  double end;
  TraceKind kind;
};

class SimTrace {
 public:
  void record(idx proc, double start, double end, TraceKind kind);

  const std::vector<TraceInterval>& intervals() const { return intervals_; }

  // Busy (compute + comm) seconds of one processor.
  double busy_seconds(idx proc) const;

  // Utilization (busy fraction) of each processor within [0, horizon],
  // bucketed into `buckets` equal time slices: result[proc][bucket].
  std::vector<std::vector<double>> utilization(idx num_procs, double horizon,
                                               idx buckets) const;

  // ASCII timeline: one row per processor (up to max_rows, sampled evenly),
  // one column per bucket; characters ' .:-=#%@' by utilization level.
  void print_timeline(std::ostream& os, idx num_procs, double horizon,
                      idx buckets = 64, idx max_rows = 16) const;

  // Machine-wide utilization per bucket (mean over processors) — the
  // pipeline fill/drain profile.
  std::vector<double> machine_profile(idx num_procs, double horizon,
                                      idx buckets) const;

 private:
  std::vector<TraceInterval> intervals_;
};

}  // namespace spc
