// Quickstart: factor a 2-D grid Laplacian, solve a system, and analyze a
// parallel mapping on the simulated Paragon machine.
#include <cstdio>
#include <vector>

#include "cholesky/sparse_cholesky.hpp"
#include "factor/residual.hpp"
#include "gen/grid_gen.hpp"
#include "ordering/geometric_nd.hpp"

int main() {
  // 1. Build a test problem: the 5-point Laplacian on a 64 x 64 grid.
  const spc::idx k = 64;
  const spc::SymSparse a = spc::make_grid2d(k, k);
  std::printf("matrix: %d equations, %lld stored nonzeros\n", a.num_rows(),
              static_cast<long long>(a.nnz_lower()));

  // 2. Analyze: nested dissection ordering (optimal for grids), supernodes,
  //    blocks of size 48.
  spc::SparseCholesky chol =
      spc::SparseCholesky::analyze_ordered(a, spc::geometric_nd_2d(k, k));
  std::printf("factor: %lld nonzeros in L, %.1f Mops to factor\n",
              static_cast<long long>(chol.factor_nnz_exact()),
              static_cast<double>(chol.factor_flops_exact()) / 1e6);

  // 3. Numeric factorization and solve.
  chol.factorize();
  std::vector<double> b(static_cast<std::size_t>(a.num_rows()), 1.0);
  const std::vector<double> x = chol.solve(b);
  std::printf("solve:  residual %.2e\n", spc::solve_residual(a, x, b));

  // 4. Parallel analysis on 64 simulated Paragon nodes: cyclic vs the
  //    paper's increasing-depth row remapping.
  for (const auto row_h : {spc::RemapHeuristic::kCyclic,
                           spc::RemapHeuristic::kIncreasingDepth}) {
    const spc::ParallelPlan plan =
        chol.plan_parallel(64, row_h, spc::RemapHeuristic::kCyclic);
    const spc::SimResult r = chol.simulate(plan);
    std::printf(
        "P=64 %-18s balance=%.2f efficiency=%.2f simulated=%.1f Mflops\n",
        heuristic_long_name(row_h).c_str(), plan.balance.overall, r.efficiency(),
        r.mflops(chol.factor_flops_exact()));
  }
  return 0;
}
