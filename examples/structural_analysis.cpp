// Domain example: linear-static structural analysis.
//
// Builds an unstructured 3-D FEM-style stiffness matrix (the kind of problem
// behind the paper's BCSSTK benchmark set), factors it once, and solves for
// several load cases — the classic workflow where sparse Cholesky dominates
// the application runtime (paper §1). Also reports what a 64-node Paragon
// run of the same factorization would look like with and without the
// paper's block remapping.
#include <chrono>
#include <cstdio>
#include <vector>

#include "cholesky/sparse_cholesky.hpp"
#include "factor/residual.hpp"
#include "gen/mesh_gen.hpp"
#include "support/rng.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  // A ~6,000-equation solid mesh: 2,000 nodes, 3 displacement dofs each.
  spc::MeshGenOptions mesh;
  mesh.nodes = 2000;
  mesh.dof = 3;
  mesh.dim = 3;
  mesh.avg_node_degree = 10.0;
  mesh.seed = 2024;
  const spc::SymSparse stiffness = spc::make_fem_mesh(mesh);
  std::printf("stiffness matrix: %d equations, %lld nonzeros (lower)\n",
              stiffness.num_rows(), static_cast<long long>(stiffness.nnz_lower()));

  // Analysis + numeric factorization (MMD ordering, B=48 blocks).
  auto t0 = std::chrono::steady_clock::now();
  spc::SparseCholesky chol = spc::SparseCholesky::analyze(stiffness);
  const double t_analyze = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  chol.factorize();
  const double t_factor = seconds_since(t0);
  std::printf("factor: %lld nonzeros, %.1f Mops; analyze %.3fs, factorize %.3fs\n",
              static_cast<long long>(chol.factor_nnz_exact()),
              static_cast<double>(chol.factor_flops_exact()) / 1e6, t_analyze,
              t_factor);

  // Multiple load cases reuse the single factorization.
  spc::Rng rng(99);
  t0 = std::chrono::steady_clock::now();
  double worst_residual = 0.0;
  const int kLoadCases = 8;
  for (int lc = 0; lc < kLoadCases; ++lc) {
    std::vector<double> load(static_cast<std::size_t>(stiffness.num_rows()));
    for (double& v : load) v = rng.uniform(-1.0, 1.0);
    const std::vector<double> displacement = chol.solve(load);
    worst_residual =
        std::max(worst_residual, spc::solve_residual(stiffness, displacement, load));
  }
  std::printf("%d load cases solved in %.3fs, worst residual %.2e\n", kLoadCases,
              seconds_since(t0), worst_residual);

  // What would this factorization do on a 64-node Paragon?
  std::printf("\nsimulated 64-node Paragon factorization:\n");
  for (const auto row_h :
       {spc::RemapHeuristic::kCyclic, spc::RemapHeuristic::kIncreasingDepth}) {
    const spc::ParallelPlan plan =
        chol.plan_parallel(64, row_h, spc::RemapHeuristic::kCyclic);
    const spc::SimResult r = chol.simulate(plan);
    std::printf("  %-12s rows: balance %.2f, %5.0f Mflops, %.3fs simulated\n",
                heuristic_long_name(row_h).c_str(), plan.balance.overall,
                r.mflops(chol.factor_flops_exact()), r.runtime_s);
  }
  return 0;
}
