// Command-line solver for MatrixMarket files.
//
//   matrix_market_solver [file.mtx]
//
// Reads a symmetric coordinate MatrixMarket matrix (real or pattern; the
// diagonal is boosted to diagonal dominance if needed so the system is SPD
// — the paper's Harwell-Boeing matrices are distributed in this format
// today), orders it with multiple minimum degree, factors, solves against a
// synthetic right-hand side, and prints factor statistics plus a simulated
// 64-node Paragon profile. With no argument, a demo matrix is generated and
// written to /tmp/spc_demo.mtx first, then read back.
#include <cstdio>
#include <string>
#include <vector>

#include "cholesky/sparse_cholesky.hpp"
#include "factor/residual.hpp"
#include "gen/mesh_gen.hpp"
#include "graph/matrix_market.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/spc_demo.mtx";
    spc::MeshGenOptions mesh;
    mesh.nodes = 500;
    mesh.dof = 3;
    mesh.dim = 2;
    mesh.avg_node_degree = 10.0;
    spc::write_matrix_market_file(path, spc::make_fem_mesh(mesh));
    std::printf("no input given; wrote demo matrix to %s\n", path.c_str());
  }

  bool boosted = false;
  const spc::SymSparse a = spc::read_matrix_market_file(path, &boosted);
  std::printf("read %s: n=%d, nnz(lower)=%lld%s\n", path.c_str(), a.num_rows(),
              static_cast<long long>(a.nnz_lower()),
              boosted ? " (diagonal boosted to ensure SPD)" : "");

  spc::SparseCholesky chol = spc::SparseCholesky::analyze(a);
  std::printf("MMD ordering: NZ(L)=%lld, ops=%.1f M, %d supernodes, %d blocks\n",
              static_cast<long long>(chol.factor_nnz_exact()),
              static_cast<double>(chol.factor_flops_exact()) / 1e6,
              chol.symbolic().num_supernodes(),
              chol.structure().num_block_cols());

  chol.factorize();
  spc::Rng rng(1);
  std::vector<double> b(static_cast<std::size_t>(a.num_rows()));
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const std::vector<double> x = chol.solve(b);
  std::printf("solve residual: %.2e\n", spc::solve_residual(a, x, b));

  const spc::ParallelPlan plan = chol.plan_parallel(
      64, spc::RemapHeuristic::kIncreasingDepth, spc::RemapHeuristic::kCyclic);
  const spc::SimResult r = chol.simulate(plan);
  std::printf("simulated 64-node Paragon: %.0f Mflops, efficiency %.2f, balance %.2f\n",
              r.mflops(chol.factor_flops_exact()), r.efficiency(),
              plan.balance.overall);
  return 0;
}
