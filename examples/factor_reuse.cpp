// Factor-reuse workflow: factor a stiffness matrix once, save the
// factorization to disk, reload it (as a later process would), and solve a
// batch of load cases against the reloaded factor — plus a condition-number
// estimate to forecast solve accuracy.
#include <cstdio>
#include <vector>

#include "cholesky/sparse_cholesky.hpp"
#include "factor/condest.hpp"
#include "factor/residual.hpp"
#include "factor/serialize.hpp"
#include "gen/mesh_gen.hpp"
#include "support/rng.hpp"

int main() {
  spc::MeshGenOptions mesh;
  mesh.nodes = 1200;
  mesh.dof = 3;
  mesh.dim = 3;
  mesh.avg_node_degree = 9.0;
  mesh.seed = 42;
  const spc::SymSparse a = spc::make_fem_mesh(mesh);

  // --- Run 1: analyze, factor (multithreaded), estimate, save. ------------
  spc::SparseCholesky chol = spc::SparseCholesky::analyze(a);
  chol.factorize_parallel();
  std::printf("factored %d equations: NZ(L)=%lld, %.1f Mops\n", a.num_rows(),
              static_cast<long long>(chol.factor_nnz_exact()),
              static_cast<double>(chol.factor_flops_exact()) / 1e6);
  const double cond =
      spc::estimate_condition(chol.permuted_matrix(), chol.factor());
  std::printf("estimated cond_2(A) = %.1f  (expect ~%.0e relative solve error)\n",
              cond, cond * 2.2e-16);

  const char* path = "/tmp/spc_factor_reuse.bin";
  spc::save_factorization_file(path, chol.ordering(), chol.structure(),
                               chol.factor());
  std::printf("saved factorization to %s\n", path);

  // --- Run 2 (simulated): reload and solve load cases. --------------------
  const spc::SavedFactorization saved = spc::load_factorization_file(path);
  spc::Rng rng(7);
  double worst = 0.0;
  for (int lc = 0; lc < 10; ++lc) {
    std::vector<double> load(static_cast<std::size_t>(a.num_rows()));
    for (double& v : load) v = rng.uniform(-1.0, 1.0);
    const std::vector<double> x = saved.solve(load);
    worst = std::max(worst, spc::solve_residual(a, x, load));
  }
  std::printf("10 load cases solved from the reloaded factor; worst residual %.2e\n",
              worst);
  return 0;
}
