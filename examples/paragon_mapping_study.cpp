// Mapping study: the paper's §4 methodology end-to-end on one matrix.
//
// For a chosen benchmark matrix (default CUBE30, override with argv[1]) and
// processor count (default 64, argv[2]), prints the full 5x5 row/column
// heuristic grid of balances and simulated performance, the effect of
// domains, and the per-processor time breakdown for the best mapping.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "cholesky/sparse_cholesky.hpp"
#include "gen/benchmark_suite.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace spc;
  const std::string name = argc > 1 ? argv[1] : "CUBE30";
  const idx procs = argc > 2 ? static_cast<idx>(std::atoi(argv[2])) : 64;

  BenchMatrix bm = make_bench_matrix(name, suite_scale_from_env());
  std::printf("%s: %d equations, P=%d (grid %dx%d)\n", bm.name.c_str(),
              bm.matrix.num_rows(), procs, make_grid(procs).rows,
              make_grid(procs).cols);
  SolverOptions opt;
  opt.ordering = SolverOptions::Ordering::kNatural;
  SparseCholesky chol =
      SparseCholesky::analyze_ordered(bm.matrix, order_bench_matrix(bm), opt);
  std::printf("factor: %lld NZ, %.1f Mops, %d block columns\n\n",
              static_cast<long long>(chol.factor_nnz_exact()),
              static_cast<double>(chol.factor_flops_exact()) / 1e6,
              chol.structure().num_block_cols());

  Table t({"Row \\ Col", "CY", "DW", "IN", "DN", "ID"});
  Table t2({"Row \\ Col", "CY", "DW", "IN", "DN", "ID"});
  double best_mf = 0.0;
  RemapHeuristic best_r = RemapHeuristic::kCyclic, best_c = RemapHeuristic::kCyclic;
  for (RemapHeuristic row_h : kAllHeuristics) {
    t.new_row();
    t2.new_row();
    t.add(heuristic_long_name(row_h));
    t2.add(heuristic_long_name(row_h));
    for (RemapHeuristic col_h : kAllHeuristics) {
      const ParallelPlan plan = chol.plan_parallel(procs, row_h, col_h);
      const SimResult r = chol.simulate(plan);
      const double mf = r.mflops(chol.factor_flops_exact());
      t.add(plan.balance.overall, 2);
      t2.add(mf, 0);
      if (mf > best_mf) {
        best_mf = mf;
        best_r = row_h;
        best_c = col_h;
      }
    }
  }
  std::printf("overall balance:\n");
  t.print(std::cout);
  std::printf("\nsimulated Mflops:\n");
  t2.print(std::cout);

  // Domains on/off for the best mapping.
  std::printf("\nbest mapping: %s rows / %s cols (%.0f Mflops)\n",
              heuristic_long_name(best_r).c_str(),
              heuristic_long_name(best_c).c_str(), best_mf);
  for (bool domains : {true, false}) {
    const ParallelPlan plan = chol.plan_parallel(procs, best_r, best_c, domains);
    const SimResult r = chol.simulate(plan);
    const double denom = static_cast<double>(procs) * r.runtime_s;
    std::printf(
        "  domains %-3s: %5.0f Mflops, eff %.2f, comm %4.1f%%, idle %4.1f%%, "
        "%lld msgs, %.1f MB\n",
        domains ? "on" : "off", r.mflops(chol.factor_flops_exact()),
        r.efficiency(), 100.0 * r.total_comm_s() / denom,
        100.0 * r.total_idle_s() / denom, static_cast<long long>(r.total_msgs()),
        static_cast<double>(r.total_bytes()) / 1e6);
  }
  return 0;
}
