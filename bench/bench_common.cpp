#include "bench_common.hpp"

#include <cstdio>

namespace spc::bench {

Prepared prepare(BenchMatrix bm, idx block_size) {
  SolverOptions opt;
  opt.block_size = block_size;
  opt.ordering = SolverOptions::Ordering::kNatural;  // ordering given below
  std::vector<idx> perm = order_bench_matrix(bm);
  SparseCholesky chol = SparseCholesky::analyze_ordered(bm.matrix, std::move(perm), opt);
  return Prepared{std::move(bm.name), std::move(bm.matrix), std::move(chol)};
}

std::vector<Prepared> prepare_standard_suite(SuiteScale scale, idx block_size) {
  std::vector<Prepared> out;
  for (BenchMatrix& bm : standard_suite(scale)) {
    out.push_back(prepare(std::move(bm), block_size));
  }
  return out;
}

std::vector<Prepared> prepare_large_suite(SuiteScale scale, idx block_size) {
  std::vector<Prepared> out;
  for (BenchMatrix& bm : large_suite(scale)) {
    out.push_back(prepare(std::move(bm), block_size));
  }
  return out;
}

void print_scale_banner(SuiteScale scale) {
  const char* s = scale == SuiteScale::kFull
                      ? "FULL (paper dimensions)"
                      : (scale == SuiteScale::kMedium ? "MEDIUM (scaled down; set SPC_FULL=1 for paper dims)"
                                                      : "SMALL (sanity sizes)");
  std::printf("suite scale: %s\n\n", s);
}

}  // namespace spc::bench
