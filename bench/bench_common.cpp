#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <thread>

namespace spc::bench {

Prepared prepare(BenchMatrix bm, idx block_size) {
  SolverOptions opt;
  opt.block_size = block_size;
  return prepare_opt(std::move(bm), opt);
}

Prepared prepare_opt(BenchMatrix bm, SolverOptions opt) {
  opt.ordering = SolverOptions::Ordering::kNatural;  // ordering given below
  std::vector<idx> perm = order_bench_matrix(bm);
  SparseCholesky chol = SparseCholesky::analyze_ordered(bm.matrix, std::move(perm), opt);
  return Prepared{std::move(bm.name), std::move(bm.matrix), std::move(chol)};
}

std::vector<int> gated_thread_counts(std::vector<int> wanted) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> out;
  std::vector<int> skipped;
  for (int t : wanted) {
    if (t <= 1 || static_cast<unsigned>(t) <= hw) {
      out.push_back(t);
    } else {
      skipped.push_back(t);
    }
  }
  if (!skipped.empty()) {
    std::printf("note: host has %u hardware thread(s); skipping wall-clock "
                "runs at", hw);
    for (int t : skipped) std::printf(" %d", t);
    std::printf(" threads (oversubscription noise)\n");
  }
  return out;
}

std::vector<Prepared> prepare_standard_suite(SuiteScale scale, idx block_size) {
  std::vector<Prepared> out;
  for (BenchMatrix& bm : standard_suite(scale)) {
    out.push_back(prepare(std::move(bm), block_size));
  }
  return out;
}

std::vector<Prepared> prepare_large_suite(SuiteScale scale, idx block_size) {
  std::vector<Prepared> out;
  for (BenchMatrix& bm : large_suite(scale)) {
    out.push_back(prepare(std::move(bm), block_size));
  }
  return out;
}

void print_scale_banner(SuiteScale scale) {
  const char* s = scale == SuiteScale::kFull
                      ? "FULL (paper dimensions)"
                      : (scale == SuiteScale::kMedium ? "MEDIUM (scaled down; set SPC_FULL=1 for paper dims)"
                                                      : "SMALL (sanity sizes)");
  std::printf("suite scale: %s\n\n", s);
}

}  // namespace spc::bench
