// Reproduces the §1/§2.4 scalability claim: 1-D column fan-out communication
// volume grows ~linearly in P, while the 2-D block fan-out volume grows
// ~like sqrt(P) — so the block method's advantage widens with machine size.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sim/column_fanout_sim.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Communication volume scaling: 1-D column vs 2-D block fan-out\n");
  bench::print_scale_banner(scale);

  for (const char* name : {"GRID300", "CUBE30"}) {
    const bench::Prepared p = bench::prepare(make_bench_matrix(name, scale));
    std::printf("%s\n", name);
    Table t({"P", "1-D MB", "2-D MB", "ratio 1D/2D", "1-D growth", "2-D growth"});
    double prev1 = 0.0, prev2 = 0.0;
    for (idx procs : {4, 16, 64, 256}) {
      const CommVolume v1 = column_fanout_comm_volume(p.chol.structure(), procs);
      const ParallelPlan plan = p.chol.plan_parallel(
          procs, RemapHeuristic::kCyclic, RemapHeuristic::kCyclic,
          /*use_domains=*/false);
      const SimResult r = p.chol.simulate(plan);
      const double mb1 = static_cast<double>(v1.bytes) / 1e6;
      const double mb2 = static_cast<double>(r.total_bytes()) / 1e6;
      t.new_row();
      t.add(static_cast<long long>(procs));
      t.add(mb1, 2);
      t.add(mb2, 2);
      t.add(mb1 / mb2, 2);
      t.add(prev1 > 0 ? mb1 / prev1 : 0.0, 2);
      t.add(prev2 > 0 ? mb2 / prev2 : 0.0, 2);
      prev1 = mb1;
      prev2 = mb2;
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape: per 4x increase in P, the 1-D volume grows toward 4x\n"
      "(until saturation) while 2-D grows toward 2x (= sqrt(4)); the 1D/2D\n"
      "ratio widens with P.\n");
  return 0;
}
