// Reproduces Table 7: simulated performance (Mflops) for the larger
// problems on P = 144 and 196, cyclic mapping vs the paper's chosen
// heuristic (Increasing Depth on rows, cyclic on columns), B = 48.
//
// Paper values (full scale, Mflops and improvement):
//            P=144 cyc  heur  impr | P=196 cyc  heur  impr
//   CUBE35      1788    2207   23% |   2019    2456   22%
//   CUBE40      2093    2384   14% |   2515    3187   27%
//   DENSE4096   3587    4156   16% |   4489    5237   17%
//   BCSSTK31    1161    1322   14% |   1361    1709   26%
//   COPTER2     1693    1779    5% |   1959    2312   18%
//   10FLEET     2027    2246   11% |   2488    2722    9%
// Expected shape: heuristic wins everywhere, ~10-25%; absolute Mflops in
// the low thousands (peak 40 Mflops/node => 196 nodes cap at 7840).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf(
      "Table 7: performance (Mflops), cyclic vs ID-rows/CY-cols heuristic "
      "(B=48)\n");
  bench::print_scale_banner(scale);

  Table t({"Matrix", "P=144 cyclic", "P=144 heur.", "impr.", "P=196 cyclic",
           "P=196 heur.", "impr."});
  Accumulator impr144, impr196;
  for (const bench::Prepared& p : bench::prepare_large_suite(scale)) {
    t.new_row();
    t.add(p.name);
    for (idx procs : {144, 196}) {
      const SimResult cy = p.chol.simulate(p.chol.plan_parallel(
          procs, RemapHeuristic::kCyclic, RemapHeuristic::kCyclic));
      const SimResult heur = p.chol.simulate(p.chol.plan_parallel(
          procs, RemapHeuristic::kIncreasingDepth, RemapHeuristic::kCyclic));
      const double mf_cy = cy.mflops(p.chol.factor_flops_exact());
      const double mf_h = heur.mflops(p.chol.factor_flops_exact());
      t.add(mf_cy, 0);
      t.add(mf_h, 0);
      t.add_percent(mf_h / mf_cy - 1.0);
      (procs == 144 ? impr144 : impr196).add(mf_h / mf_cy - 1.0);
    }
  }
  t.print(std::cout);
  std::printf("\nmean improvement: P=144 %.0f%%, P=196 %.0f%% (paper: 14%%, 20%%)\n",
              impr144.mean() * 100.0, impr196.mean() * 100.0);
  return 0;
}
