// Block size / blocking policy ablation.
//
// Part 1 reproduces the §3.1/§5 uniform block size discussion: B=48 balances
// single-node efficiency (bigger blocks amortize the fixed per-op cost)
// against concurrency (smaller blocks expose more parallel tasks). It sweeps
// B and reports simulated performance, plus the critical path that shows the
// concurrency loss at large B.
//
// Part 2 measures the structure-aware blocking policy (blocks/blocking.hpp,
// docs/BLOCKING.md) against uniform B=48/64 on the two matrix families of
// the paper's suite: real numeric-factor wall clock at 1 thread (the kernel
// throughput story), a host-gated multi-thread sweep, and the recomputed
// balance statistics of a P=64 ID/CY plan (the load-distribution story).
// Writes BENCH_blocking.json to the repo root (override with
// --json-out=PATH); host thread count is recorded so multicore reruns are
// comparable.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "factor/parallel_factor.hpp"
#include "factor/residual.hpp"
#include "gen/benchmark_suite.hpp"
#include "sim/critical_path.hpp"
#include "support/table.hpp"

#ifndef SPC_REPO_ROOT
#define SPC_REPO_ROOT "."
#endif

namespace {

using namespace spc;

void uniform_sweep(SuiteScale scale) {
  std::printf("Uniform block size ablation (S3.1/S5), P=64, ID/CY mapping\n");
  for (const char* name : {"GRID300", "CUBE30"}) {
    std::printf("%s\n", name);
    Table t({"B", "block cols", "MF (P=64)", "efficiency", "t_cp (s)",
             "overall bal."});
    for (idx b : {8, 16, 24, 48, 96, 144}) {
      const bench::Prepared p =
          bench::prepare(make_bench_matrix(name, scale), b);
      const ParallelPlan plan = p.chol.plan_parallel(
          64, RemapHeuristic::kIncreasingDepth, RemapHeuristic::kCyclic);
      const SimResult r = p.chol.simulate(plan);
      const CriticalPathResult cp =
          critical_path(p.chol.structure(), p.chol.task_graph());
      t.new_row();
      t.add(static_cast<long long>(b));
      t.add(static_cast<long long>(p.chol.structure().num_block_cols()));
      t.add(r.mflops(p.chol.factor_flops_exact()), 0);
      t.add(r.efficiency(), 2);
      t.add(cp.critical_path_s, 4);
      t.add(plan.balance.overall, 2);
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape: performance peaks at an intermediate B (the paper uses\n"
      "48); small B loses to per-op overhead, large B loses concurrency (the\n"
      "critical path grows) and load balance.\n\n");
}

// --- Part 2: blocking policy ablation + BENCH_blocking.json -----------------

struct ThreadRun {
  int threads;
  double factor_s;
};

struct ConfigResult {
  std::string label;
  BlockingPolicy policy;
  idx block_size, block_cap;
  idx block_cols;
  i64 block_ops;
  double analyze_s;
  double serial_s;   // sequential block_factorize
  double par1_s;     // work-stealing executor, 1 thread (production path)
  double mflops_1t;  // factor flops / par1_s
  BalanceStats balance;
  std::vector<ThreadRun> runs;  // host-gated >= 2-thread sweep
};

struct MatrixBlockingResult {
  std::string name;
  idx n;
  i64 flops;
  std::vector<ConfigResult> configs;
};

// One prepared configuration plus its timing samples. Wall-clock reps are
// interleaved ACROSS configurations (rep 0 of every config, then rep 1, ...)
// so slow drift in the host's available cycles — this runs on shared,
// oversubscribed machines — biases every config equally instead of
// penalizing whichever one happens to run last.
struct ConfigCtx {
  ConfigResult c;
  bench::Prepared p;
  std::vector<double> serial_t, par1_t;
  std::vector<std::vector<double>> thread_t;  // parallel [gated thread idx]

  ConfigCtx(const char* label, const BenchMatrix& bm, SolverOptions opt)
      : p([&] {
          BenchMatrix copy = bm;  // prepare_opt consumes the matrix
          return bench::prepare_opt(std::move(copy), opt);
        }()) {
    c.label = label;
    c.policy = opt.blocking;
    c.block_size = opt.block_size;
    c.block_cap = opt.blocking_options().width_cap();
    c.block_cols = p.chol.structure().num_block_cols();
    c.block_ops = p.chol.task_graph().total_ops();
  }
};

double median_of(std::vector<double> t) {
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

template <typename F>
double time_once(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<ConfigResult> bench_configs(
    const BenchMatrix& bm,
    const std::vector<std::pair<const char*, SolverOptions>>& specs, int reps,
    const std::vector<int>& gated_threads) {
  std::vector<ConfigCtx> ctx;
  for (const auto& [label, opt] : specs) {
    const auto t0 = std::chrono::steady_clock::now();
    ctx.emplace_back(label, bm, opt);
    ctx.back().c.analyze_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }

  std::vector<int> multi_threads;
  for (int t : gated_threads)
    if (t > 1) multi_threads.push_back(t);

  std::vector<BlockFactor> f(ctx.size());
  std::vector<std::unique_ptr<ParallelWorkspace>> ws;
  for (ConfigCtx& x : ctx) {
    x.thread_t.resize(multi_threads.size());
    ws.push_back(std::make_unique<ParallelWorkspace>(x.p.chol.structure(),
                                                     x.p.chol.task_graph()));
  }

  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < ctx.size(); ++i) {
      ConfigCtx& x = ctx[i];
      const SymSparse& ap = x.p.chol.permuted_matrix();
      const BlockStructure& bs = x.p.chol.structure();
      const TaskGraph& tg = x.p.chol.task_graph();
      x.serial_t.push_back(time_once([&] { f[i] = block_factorize(ap, bs); }));
      x.par1_t.push_back(time_once([&] {
        f[i] = block_factorize_parallel(ap, bs, tg, ParallelFactorOptions{1},
                                        ws[i].get());
      }));
      for (std::size_t k = 0; k < multi_threads.size(); ++k) {
        x.thread_t[k].push_back(time_once([&] {
          f[i] = block_factorize_parallel(
              ap, bs, tg, ParallelFactorOptions{multi_threads[k]}, ws[i].get());
        }));
      }
    }
  }

  std::vector<ConfigResult> out;
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    ConfigCtx& x = ctx[i];
    ConfigResult& c = x.c;
    c.serial_s = median_of(x.serial_t);
    c.par1_s = median_of(x.par1_t);
    c.mflops_1t =
        static_cast<double>(x.p.chol.factor_flops_exact()) / c.par1_s / 1e6;
    const double residual = factor_residual_probe(x.p.chol.permuted_matrix(), f[i]);
    for (std::size_t k = 0; k < multi_threads.size(); ++k) {
      c.runs.push_back(ThreadRun{multi_threads[k], median_of(x.thread_t[k])});
    }
    const ParallelPlan plan = x.p.chol.plan_parallel(
        64, RemapHeuristic::kIncreasingDepth, RemapHeuristic::kCyclic);
    c.balance = plan.balance;

    std::printf(
        "  %-22s cols=%-5lld ops=%-7lld analyze %.3fs  serial %.3fs  1t %.3fs "
        "(%.0f MF/s)  bal %.3f  residual %.1e\n",
        c.label.c_str(), static_cast<long long>(c.block_cols),
        static_cast<long long>(c.block_ops), c.analyze_s, c.serial_s, c.par1_s,
        c.mflops_1t, c.balance.overall, residual);
    for (const ThreadRun& run : c.runs) {
      std::printf("    %d threads: %.3fs (speedup %.2fx)\n", run.threads,
                  run.factor_s, c.par1_s / run.factor_s);
    }
    out.push_back(std::move(c));
  }
  return out;
}

void write_json(const std::string& path, SuiteScale scale,
                const std::vector<MatrixBlockingResult>& results) {
  std::FILE* jf = std::fopen(path.c_str(), "w");
  if (!jf) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(jf, "{\n  \"bench\": \"blocking_ablation\",\n");
  std::fprintf(jf, "  \"host_hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(jf, "  \"scale\": \"%s\",\n",
               scale == SuiteScale::kFull
                   ? "full"
                   : (scale == SuiteScale::kMedium ? "medium" : "small"));
  std::fprintf(jf, "  \"matrices\": [\n");
  double log_speedup48 = 0, log_speedup64 = 0;
  int speedup_count = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const MatrixBlockingResult& m = results[i];
    std::fprintf(jf,
                 "    {\"name\": \"%s\", \"n\": %lld, \"factor_flops\": %lld,\n"
                 "     \"configs\": [\n",
                 m.name.c_str(), static_cast<long long>(m.n),
                 static_cast<long long>(m.flops));
    const ConfigResult* u48 = nullptr;
    const ConfigResult* u64 = nullptr;
    const ConfigResult* sn = nullptr;
    for (std::size_t k = 0; k < m.configs.size(); ++k) {
      const ConfigResult& c = m.configs[k];
      if (c.policy == BlockingPolicy::kUniform && c.block_size == 48) u48 = &c;
      if (c.policy == BlockingPolicy::kUniform && c.block_size == 64) u64 = &c;
      if (c.policy == BlockingPolicy::kSupernode) sn = &c;
      std::fprintf(
          jf,
          "       {\"policy\": \"%s\", \"block_size\": %lld, \"block_cap\": "
          "%lld, \"block_cols\": %lld, \"block_ops\": %lld,\n"
          "        \"analyze_s\": %.4f, \"serial_factor_s\": %.4f, "
          "\"parallel1_factor_s\": %.4f, \"mflops_1t\": %.1f,\n"
          "        \"balance\": {\"row\": %.4f, \"col\": %.4f, \"diag\": "
          "%.4f, \"overall\": %.4f},\n"
          "        \"runs\": [",
          blocking_policy_name(c.policy), static_cast<long long>(c.block_size),
          static_cast<long long>(c.block_cap),
          static_cast<long long>(c.block_cols),
          static_cast<long long>(c.block_ops), c.analyze_s, c.serial_s,
          c.par1_s, c.mflops_1t, c.balance.row, c.balance.col, c.balance.diag,
          c.balance.overall);
      for (std::size_t r = 0; r < c.runs.size(); ++r) {
        std::fprintf(jf, "{\"threads\": %d, \"factor_s\": %.4f}%s",
                     c.runs[r].threads, c.runs[r].factor_s,
                     r + 1 < c.runs.size() ? ", " : "");
      }
      std::fprintf(jf, "]}%s\n", k + 1 < m.configs.size() ? "," : "");
    }
    std::fprintf(jf, "     ]");
    if (u48 != nullptr && u64 != nullptr && sn != nullptr) {
      const double s48 = u48->par1_s / sn->par1_s;
      const double s64 = u64->par1_s / sn->par1_s;
      std::fprintf(jf,
                   ",\n     \"supernode_speedup_1t_vs_b48\": %.3f,\n"
                   "     \"supernode_speedup_1t_vs_b64\": %.3f,\n"
                   "     \"supernode_balance_gain_vs_b48\": %.4f",
                   s48, s64, sn->balance.overall - u48->balance.overall);
      log_speedup48 += std::log(s48);
      log_speedup64 += std::log(s64);
      ++speedup_count;
    }
    std::fprintf(jf, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(jf, "  ]");
  if (speedup_count > 0) {
    std::fprintf(jf,
                 ",\n  \"supernode_speedup_1t_geomean_vs_b48\": %.3f,\n"
                 "  \"supernode_speedup_1t_geomean_vs_b64\": %.3f",
                 std::exp(log_speedup48 / speedup_count),
                 std::exp(log_speedup64 / speedup_count));
  }
  std::fprintf(jf, "\n}\n");
  std::fclose(jf);
  std::printf("wrote %s\n", path.c_str());
}

void policy_ablation(SuiteScale scale, const std::string& json_path) {
  std::printf("Blocking policy ablation: uniform B vs structure-aware "
              "supernode blocking\n");
  // Medium-scale factors run ~10ms, where shared-host noise needs many
  // interleaved reps; full-scale runs are seconds and stable.
  const int reps = scale == SuiteScale::kSmall
                       ? 1
                       : (scale == SuiteScale::kMedium ? 25 : 5);
  const std::vector<int> gated_threads =
      bench::gated_thread_counts({1, 2, 4, 8});

  std::vector<MatrixBlockingResult> results;
  for (const char* name : {"CUBE30", "10FLEET"}) {
    const BenchMatrix bm = make_bench_matrix(name, scale);
    MatrixBlockingResult mr;
    mr.name = name;
    mr.n = bm.matrix.num_rows();
    std::printf("%s (%lld equations)\n", name, static_cast<long long>(mr.n));

    SolverOptions u48;
    u48.block_size = 48;
    SolverOptions u64o;
    u64o.block_size = 64;
    SolverOptions sn;
    sn.block_size = 48;
    sn.blocking = BlockingPolicy::kSupernode;
    sn.block_cap = 160;

    mr.configs = bench_configs(bm,
                               {{"uniform B=48", u48},
                                {"uniform B=64", u64o},
                                {"supernode (48..160)", sn}},
                               reps, gated_threads);
    {
      // factor_flops is ordering-dependent; recompute once per matrix.
      BenchMatrix copy = bm;
      mr.flops = bench::prepare_opt(std::move(copy), u48).chol.factor_flops_exact();
    }
    results.push_back(std::move(mr));
    std::printf("\n");
  }
  write_json(json_path, scale, results);
}

}  // namespace

int main(int argc, char** argv) {
  const SuiteScale scale = suite_scale_from_env();
  std::string json_path = std::string(SPC_REPO_ROOT) + "/BENCH_blocking.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) json_path = argv[i] + 11;
  }
  bench::print_scale_banner(scale);
  uniform_sweep(scale);
  policy_ablation(scale, json_path);
  return 0;
}
