// Reproduces the §3.1/§5 block size discussion: B=48 balances single-node
// efficiency (bigger blocks amortize the fixed per-op cost) against
// concurrency (smaller blocks expose more parallel tasks). This bench sweeps
// B and reports simulated performance, plus the critical path that shows
// the concurrency loss at large B.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "gen/benchmark_suite.hpp"
#include "sim/critical_path.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Block size ablation (S3.1/S5), P=64, ID/CY heuristic mapping\n");
  bench::print_scale_banner(scale);

  for (const char* name : {"GRID300", "CUBE30"}) {
    std::printf("%s\n", name);
    Table t({"B", "block cols", "MF (P=64)", "efficiency", "t_cp (s)",
             "overall bal."});
    for (idx b : {8, 16, 24, 48, 96, 144}) {
      const bench::Prepared p =
          bench::prepare(make_bench_matrix(name, scale), b);
      const ParallelPlan plan = p.chol.plan_parallel(
          64, RemapHeuristic::kIncreasingDepth, RemapHeuristic::kCyclic);
      const SimResult r = p.chol.simulate(plan);
      const CriticalPathResult cp =
          critical_path(p.chol.structure(), p.chol.task_graph());
      t.new_row();
      t.add(static_cast<long long>(b));
      t.add(static_cast<long long>(p.chol.structure().num_block_cols()));
      t.add(r.mflops(p.chol.factor_flops_exact()), 0);
      t.add(r.efficiency(), 2);
      t.add(cp.critical_path_s, 4);
      t.add(plan.balance.overall, 2);
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape: performance peaks at an intermediate B (the paper uses\n"
      "48); small B loses to per-op overhead, large B loses concurrency (the\n"
      "critical path grows) and load balance.\n");
  return 0;
}
