// Reproduces Table 1: the benchmark matrices — equations, strictly-lower
// nonzeros in L, and sequential operation count.
//
// Paper values at full scale (for comparison; Harwell-Boeing rows are
// synthetic stand-ins, see DESIGN.md §2):
//   DENSE1024  1,024   523,776    358.4M        CUBE30   27,000  6,233,404  3,904.3M
//   DENSE2048  2,048   2,096,128  2,865.4M      CUBE35   42,875 12,093,814 10,114.7M
//   GRID150    22,500  656,027    56.5M         BCSSTK15  3,948    647,274    165.0M
//   GRID300    90,000  3,266,773  482.0M        BCSSTK29 13,992  1,680,804    393.1M
//                                               BCSSTK31 35,588  5,272,659  2,551.0M
//                                               BCSSTK33  8,738  2,538,064  1,203.5M
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Table 1: benchmark matrices\n");
  bench::print_scale_banner(scale);

  Table t({"Name", "Equations", "NZ in L", "Ops to factor (M)", "Supernodes",
           "Block cols (B=48)"});
  for (const bench::Prepared& p : bench::prepare_standard_suite(scale)) {
    t.new_row();
    t.add(p.name);
    t.add(static_cast<long long>(p.a.num_rows()));
    t.add(static_cast<long long>(p.chol.factor_nnz_exact()));
    t.add(static_cast<double>(p.chol.factor_flops_exact()) / 1e6, 1);
    t.add(static_cast<long long>(p.chol.symbolic().num_supernodes()));
    t.add(static_cast<long long>(p.chol.structure().num_block_cols()));
  }
  t.print(std::cout);
  return 0;
}
