// Reproduces the §5 subtree-to-subcube exploration: mapping processor
// COLUMNS recursively to elimination-tree subtrees cuts communication volume
// (paper: by up to ~30%) but degrades load balance to roughly cyclic levels,
// so on a machine where communication is cheap (the Paragon) it loses to the
// plain remapping heuristic.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "mapping/subcube.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Subtree-to-subcube column mapping ablation (S5), P=64, B=48\n");
  bench::print_scale_banner(scale);

  Table t({"Matrix", "MB heur", "MB subcube", "vol. change", "bal. heur",
           "bal. subcube", "MF heur", "MF subcube"});
  Accumulator vol_change, perf_change;
  for (const bench::Prepared& p : bench::prepare_standard_suite(scale)) {
    const ParallelPlan heur = p.chol.plan_parallel(
        64, RemapHeuristic::kIncreasingDepth, RemapHeuristic::kCyclic);
    // Subcube columns + heuristic (DW) rows, as in the paper's experiment.
    BlockMap sub_map = heur.map;
    sub_map.map_col = subcube_col_map(sub_map.grid.cols, p.chol.structure(),
                                      p.chol.symbolic().sn_parent,
                                      heur.root_work.col_work);
    sub_map.map_row = remap_dimension(RemapHeuristic::kDecreasingWork,
                                      sub_map.grid.rows, heur.root_work.row_work, {});
    const ParallelPlan sub = p.chol.plan_from_map(std::move(sub_map));

    const SimResult r_h = p.chol.simulate(heur);
    const SimResult r_s = p.chol.simulate(sub);
    t.new_row();
    t.add(p.name);
    t.add(static_cast<double>(r_h.total_bytes()) / 1e6, 2);
    t.add(static_cast<double>(r_s.total_bytes()) / 1e6, 2);
    t.add_percent(static_cast<double>(r_s.total_bytes()) / r_h.total_bytes() - 1.0);
    t.add(heur.balance.overall, 2);
    t.add(sub.balance.overall, 2);
    t.add(r_h.mflops(p.chol.factor_flops_exact()), 0);
    t.add(r_s.mflops(p.chol.factor_flops_exact()), 0);
    vol_change.add(static_cast<double>(r_s.total_bytes()) / r_h.total_bytes() - 1.0);
    perf_change.add(r_s.runtime_s > 0 ? r_h.runtime_s / r_s.runtime_s - 1.0 : 0.0);
  }
  t.print(std::cout);
  std::printf(
      "\nmean volume change %.0f%%; mean heuristic-over-subcube speedup %.0f%%\n"
      "Expected shape (paper): subcube cuts volume (up to ~30%%) but loses\n"
      "balance, ending slower than the heuristic mapping on this machine.\n",
      vol_change.mean() * 100.0, perf_change.mean() * 100.0);
  return 0;
}
