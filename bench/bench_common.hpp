// Shared helpers for the table/figure reproduction benches.
//
// Scale control: benches default to SuiteScale::kMedium (minutes on one
// core); set SPC_FULL=1 in the environment to run the paper's exact problem
// dimensions, or SPC_SMALL=1 for a fast sanity pass.
#pragma once

#include <string>
#include <vector>

#include "cholesky/sparse_cholesky.hpp"
#include "gen/benchmark_suite.hpp"

namespace spc::bench {

struct Prepared {
  std::string name;
  SymSparse a;
  SparseCholesky chol;
};

// Runs the analysis pipeline (paper ordering + B=48 blocks) for one matrix.
Prepared prepare(BenchMatrix bm, idx block_size = 48);

// Same, with full solver options (e.g. a blocking policy); the ordering is
// still the paper's prescription for the matrix.
Prepared prepare_opt(BenchMatrix bm, SolverOptions opt);

// Thread counts for multi-thread scaling sections, gated on the host:
// counts above std::thread::hardware_concurrency() are dropped (1 is always
// kept), because wall-clock "scaling" figures from an oversubscribed host
// are noise — BENCH_parallel.json records host_hardware_threads for the
// same reason. Benches print what was skipped.
std::vector<int> gated_thread_counts(std::vector<int> wanted);

// The Table 1 suite / Table 6 suite, analyzed.
std::vector<Prepared> prepare_standard_suite(SuiteScale scale, idx block_size = 48);
std::vector<Prepared> prepare_large_suite(SuiteScale scale, idx block_size = 48);

// Banner describing the active scale.
void print_scale_banner(SuiteScale scale);

}  // namespace spc::bench
