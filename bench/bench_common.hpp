// Shared helpers for the table/figure reproduction benches.
//
// Scale control: benches default to SuiteScale::kMedium (minutes on one
// core); set SPC_FULL=1 in the environment to run the paper's exact problem
// dimensions, or SPC_SMALL=1 for a fast sanity pass.
#pragma once

#include <string>
#include <vector>

#include "cholesky/sparse_cholesky.hpp"
#include "gen/benchmark_suite.hpp"

namespace spc::bench {

struct Prepared {
  std::string name;
  SymSparse a;
  SparseCholesky chol;
};

// Runs the analysis pipeline (paper ordering + B=48 blocks) for one matrix.
Prepared prepare(BenchMatrix bm, idx block_size = 48);

// The Table 1 suite / Table 6 suite, analyzed.
std::vector<Prepared> prepare_standard_suite(SuiteScale scale, idx block_size = 48);
std::vector<Prepared> prepare_large_suite(SuiteScale scale, idx block_size = 48);

// Banner describing the active scale.
void print_scale_banner(SuiteScale scale);

}  // namespace spc::bench
