// Reproduces §4.2's first alternative heuristic: keep a cyclic column map,
// then assign each block row (decreasing work) to the processor row that
// minimizes the resulting maximum PER-PROCESSOR load, instead of the
// per-row-aggregate load the main heuristic minimizes.
//
// Paper finding: the finer objective improves overall balance by a further
// ~10-15%, but simulated performance does NOT improve — evidence that after
// remapping, load balance is no longer the binding bottleneck.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Fine-grained row mapping ablation (S4.2), P=64, B=48\n");
  bench::print_scale_banner(scale);

  Table t({"Matrix", "bal. DW/CY", "bal. fine/CY", "perf DW/CY (MF)",
           "perf fine/CY (MF)"});
  Accumulator bal_gain, perf_gain;
  for (const bench::Prepared& p : bench::prepare_standard_suite(scale)) {
    // Aggregate heuristic: DW rows, cyclic columns.
    const ParallelPlan coarse = p.chol.plan_parallel(
        64, RemapHeuristic::kDecreasingWork, RemapHeuristic::kCyclic);
    // Fine-grained: same column map, row map minimizing max per-proc load.
    BlockMap fine_map = coarse.map;
    fine_map.map_row =
        finegrained_row_map(coarse.map.grid, coarse.map.map_col, coarse.root_work);
    const ParallelPlan fine = p.chol.plan_from_map(std::move(fine_map));

    const double mf_coarse =
        p.chol.simulate(coarse).mflops(p.chol.factor_flops_exact());
    const double mf_fine = p.chol.simulate(fine).mflops(p.chol.factor_flops_exact());
    t.new_row();
    t.add(p.name);
    t.add(coarse.balance.overall, 2);
    t.add(fine.balance.overall, 2);
    t.add(mf_coarse, 0);
    t.add(mf_fine, 0);
    bal_gain.add(fine.balance.overall / coarse.balance.overall - 1.0);
    perf_gain.add(mf_fine / mf_coarse - 1.0);
  }
  t.print(std::cout);
  std::printf(
      "\nmean balance gain %.1f%%, mean performance gain %.1f%%\n"
      "Expected shape (paper): balance improves ~10-15%%, performance ~0%%.\n",
      bal_gain.mean() * 100.0, perf_gain.mean() * 100.0);
  return 0;
}
