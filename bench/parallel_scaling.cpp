// Shared-memory parallel factorization scaling: seed executor vs the
// work-stealing executor across thread counts, on a regular 3-D grid problem
// and an irregular LP normal-equations problem (the two families of the
// paper's test suite), at block sizes B = 48 and 64.
//
// "seed"  = kGlobalQueue scheduler (single mutex+condvar FIFO, whole BMOD
//           under the destination lock) + the seed GEMM dispatch
//           (register-blocked kernel, scalar potrf/trsm inside it).
// "new"   = kWorkStealing scheduler (lock-free deques, critical-path
//           priorities, arena block storage, aggregated scatters) + the
//           packed/tiled kernels, driven through a reused ParallelWorkspace.
//
// Reported per matrix: the analyze (symbolic) time separately from numeric
// factorization, the parallel efficiency t1/(tP*P) of the new executor, and
// the per-phase breakdown (BFAC/BDIV/BMOD-compute/scatter/init/idle) of the
// new executor at each thread count.
//
// Thread counts default to 1,2,4,8; override with SPC_THREADS=N[,N...].
// Writes BENCH_parallel.json to the repo root (override with
// --json-out=PATH). SPC_SMALL=1 shrinks the problems for a sanity pass.
//
// Note on this host: the container is typically pinned to one core, so the
// thread sweep measures scheduling + locking overhead and kernel speed, not
// true parallel speedup; on a multi-core host the same binary shows scaling.
// The host's core count is recorded in the JSON for exactly that reason.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cholesky/sparse_cholesky.hpp"
#include "factor/parallel_factor.hpp"
#include "factor/residual.hpp"
#include "gen/grid_gen.hpp"
#include "gen/lp_gen.hpp"
#include "linalg/kernels.hpp"

#ifndef SPC_REPO_ROOT
#define SPC_REPO_ROOT "."
#endif

namespace {

using namespace spc;

template <typename F>
double median_seconds(F&& fn, int reps) {
  std::vector<double> t(reps);
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    t[r] = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
               .count();
  }
  std::sort(t.begin(), t.end());
  return t[reps / 2];
}

std::vector<int> thread_counts_from_env() {
  std::vector<int> counts;
  if (const char* env = std::getenv("SPC_THREADS")) {
    int v = 0;
    for (const char* p = env;; ++p) {
      if (*p >= '0' && *p <= '9') {
        v = v * 10 + (*p - '0');
      } else {
        if (v > 0) counts.push_back(v);
        v = 0;
        if (*p == '\0') break;
      }
    }
  }
  // The default sweep is host-gated: counts above the hardware thread count
  // are oversubscription noise (an explicit SPC_THREADS list is honored
  // verbatim for deliberate oversubscription runs).
  if (counts.empty()) counts = bench::gated_thread_counts({1, 2, 4, 8});
  return counts;
}

struct Run {
  int threads;
  double seed_s;
  double none_s;      // new executor, affinity off (pure work stealing)
  double new_s;       // new executor, subtree affinity (the default)
  double efficiency;  // t1 / (tP * P) of the new executor (affinity on)
  ParallelProfile::Worker phases;       // summed over workers (affinity on)
  ParallelProfile::Worker phases_none;  // summed over workers (affinity off)
  i64 steals;                           // affinity on
  i64 steals_none;                      // affinity off
  i64 affinity_hits;
  i64 below_frontier_steals;
};

struct MatrixResult {
  std::string name;
  idx n;
  idx block_size;
  i64 flops;
  double analyze_s;  // symbolic phase (ordering..task graph), once
  double serial_s;   // sequential block_factorize, new kernels
  std::vector<Run> runs;
};

MatrixResult bench_matrix(const std::string& name, const SymSparse& a,
                          idx block_size, const std::vector<int>& threads_list,
                          int reps) {
  SolverOptions sopt;
  sopt.block_size = block_size;

  MatrixResult res;
  res.name = name;
  res.n = a.num_rows();
  res.block_size = block_size;

  // Analyze (symbolic) time, reported separately from numeric factorization.
  SparseCholesky chol = SparseCholesky::analyze(a, sopt);
  res.analyze_s =
      median_seconds([&] { chol = SparseCholesky::analyze(a, sopt); }, reps);
  const SymSparse& ap = chol.permuted_matrix();
  const BlockStructure& bs = chol.structure();
  const TaskGraph& tg = chol.task_graph();
  res.flops = chol.factor_flops_exact();

  BlockFactor f;
  res.serial_s = median_seconds([&] { f = block_factorize(ap, bs); }, reps);
  const double residual = factor_residual_probe(ap, f);

  std::printf(
      "%-10s B=%-3lld n=%-7lld flops=%.3g  analyze %.3fs  serial %.3fs  "
      "residual %.1e\n",
      name.c_str(), static_cast<long long>(block_size),
      static_cast<long long>(res.n), static_cast<double>(res.flops),
      res.analyze_s, res.serial_s, residual);

  // One workspace for the whole sweep: after the first run at the largest
  // thread count has grown the scratch, repeated factorizations reuse it.
  ParallelWorkspace ws(bs, tg);

  double new_1t = 0;
  for (int threads : threads_list) {
    Run run{};
    run.threads = threads;

    ParallelFactorOptions seed_opt{threads};
    seed_opt.scheduler = ParallelFactorOptions::Scheduler::kGlobalQueue;
    set_gemm_dispatch(GemmDispatch::kSeedBlocked);
    run.seed_s = median_seconds(
        [&] { f = block_factorize_parallel(ap, bs, tg, seed_opt); }, reps);

    // New executor with affinity off: the pre-affinity pure work stealing
    // baseline the subtree partition is measured against.
    ParallelFactorOptions none_opt{threads};
    none_opt.scheduler = ParallelFactorOptions::Scheduler::kWorkStealing;
    none_opt.affinity = ParallelFactorOptions::Affinity::kNone;
    set_gemm_dispatch(GemmDispatch::kAuto);
    run.none_s = median_seconds(
        [&] { f = block_factorize_parallel(ap, bs, tg, none_opt, &ws); }, reps);
    {
      ParallelProfile prof;
      none_opt.profile = &prof;
      f = block_factorize_parallel(ap, bs, tg, none_opt, &ws);
      run.phases_none = prof.total();
      run.steals_none = prof.steals;
    }

    // New executor with subtree affinity (the default policy).
    ParallelFactorOptions new_opt{threads};
    new_opt.scheduler = ParallelFactorOptions::Scheduler::kWorkStealing;
    run.new_s = median_seconds(
        [&] { f = block_factorize_parallel(ap, bs, tg, new_opt, &ws); }, reps);

    // One profiled run for the phase breakdown (timer overhead excluded from
    // the timings above).
    ParallelProfile prof;
    new_opt.profile = &prof;
    f = block_factorize_parallel(ap, bs, tg, new_opt, &ws);
    run.phases = prof.total();
    run.steals = prof.steals;
    run.affinity_hits = run.phases.affinity_hits;
    run.below_frontier_steals = run.phases.below_frontier_steals;

    if (threads == 1) new_1t = run.new_s;
    run.efficiency =
        (new_1t > 0 && run.new_s > 0) ? new_1t / (run.new_s * threads) : 0.0;

    std::printf(
        "  threads=%d  seed %.3fs  nosteal-affinity %.3fs  new %.3fs  "
        "speedup %.2fx  eff %.2f\n"
        "    [gemm %.3fs (off: %.3fs) scatter %.3fs idle %.3fs  "
        "steals %lld (off: %lld)  "
        "pinned-hits %lld  frontier-violations %lld]\n",
        threads, run.seed_s, run.none_s, run.new_s, run.seed_s / run.new_s,
        run.efficiency, run.phases.bmod_compute_s,
        run.phases_none.bmod_compute_s, run.phases.scatter_s,
        run.phases.idle_s, static_cast<long long>(run.steals),
        static_cast<long long>(run.steals_none),
        static_cast<long long>(run.affinity_hits),
        static_cast<long long>(run.below_frontier_steals));
    res.runs.push_back(run);
  }
  return res;
}

void write_json(const std::string& path,
                const std::vector<MatrixResult>& results) {
  std::FILE* jf = std::fopen(path.c_str(), "w");
  if (!jf) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(jf, "{\n  \"bench\": \"parallel_scaling\",\n");
  std::fprintf(jf, "  \"host_hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(jf, "  \"isa\": \"%s\",\n", kernel_isa_name(kernel_isa()));
  std::fprintf(jf, "  \"affinity\": \"subtree\",\n");
  std::fprintf(jf,
               "  \"seed_impl\": \"kGlobalQueue scheduler + seed "
               "register-blocked kernels\",\n");
  std::fprintf(jf,
               "  \"new_impl\": \"kWorkStealing scheduler (lock-free deques, "
               "arena storage, aggregated scatters) + packed/tiled "
               "kernels\",\n");
  std::fprintf(jf, "  \"matrices\": [\n");
  double log_sum = 0;
  int log_count = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const MatrixResult& m = results[i];
    std::fprintf(jf,
                 "    {\"name\": \"%s\", \"n\": %lld, \"block_size\": %lld, "
                 "\"factor_flops\": %lld, \"analyze_s\": %.4f, "
                 "\"serial_s\": %.4f,\n     \"runs\": [\n",
                 m.name.c_str(), static_cast<long long>(m.n),
                 static_cast<long long>(m.block_size),
                 static_cast<long long>(m.flops), m.analyze_s, m.serial_s);
    double speedup_8t = 0;
    for (std::size_t r = 0; r < m.runs.size(); ++r) {
      const Run& run = m.runs[r];
      std::fprintf(
          jf,
          "       {\"threads\": %d, \"seed_s\": %.4f, "
          "\"affinity_none_s\": %.4f, \"new_s\": %.4f, "
          "\"speedup\": %.3f, \"efficiency\": %.3f,\n        \"phases\": "
          "{\"init_s\": %.4f, \"bfac_s\": %.4f, \"bdiv_s\": %.4f, "
          "\"bmod_compute_s\": %.4f, \"scatter_s\": %.4f, \"idle_s\": %.4f, "
          "\"batches\": %lld, \"mods\": %lld, \"steals\": %lld, "
          "\"steals_affinity_none\": %lld, "
          "\"bmod_compute_affinity_none_s\": %.4f, \"affinity_hits\": %lld, "
          "\"below_frontier_steals\": %lld}}%s\n",
          run.threads, run.seed_s, run.none_s, run.new_s,
          run.seed_s / run.new_s, run.efficiency, run.phases.init_s,
          run.phases.bfac_s, run.phases.bdiv_s, run.phases.bmod_compute_s,
          run.phases.scatter_s, run.phases.idle_s,
          static_cast<long long>(run.phases.batches),
          static_cast<long long>(run.phases.mods),
          static_cast<long long>(run.steals),
          static_cast<long long>(run.steals_none),
          run.phases_none.bmod_compute_s,
          static_cast<long long>(run.affinity_hits),
          static_cast<long long>(run.below_frontier_steals),
          r + 1 < m.runs.size() ? "," : "");
      if (run.threads == 8) speedup_8t = run.seed_s / run.new_s;
    }
    std::fprintf(jf, "     ],\n     \"speedup_8t_new_over_seed\": %.3f}%s\n",
                 speedup_8t, i + 1 < results.size() ? "," : "");
    if (speedup_8t > 0) {
      log_sum += std::log(speedup_8t);
      ++log_count;
    }
  }
  const double geomean = log_count ? std::exp(log_sum / log_count) : 0.0;
  std::fprintf(jf, "  ],\n  \"speedup_8t_geomean\": %.3f\n}\n", geomean);
  std::fclose(jf);
  std::printf("wrote %s (8-thread geomean speedup %.2fx)\n", path.c_str(),
              geomean);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = std::string(SPC_REPO_ROOT) + "/BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) json_path = argv[i] + 11;
  }
  const bool small = std::getenv("SPC_SMALL") != nullptr;
  const int reps = small ? 1 : 3;
  const idx cube = small ? 12 : 30;
  LpGenOptions lp;
  lp.n = small ? 1500 : 10000;
  lp.mean_overlap = small ? 60 : 200;
  lp.hubs = small ? 20 : 80;
  lp.hub_span = 0.05;

  const std::vector<int> threads_list = thread_counts_from_env();
  std::string tl;
  for (int t : threads_list) {
    if (!tl.empty()) tl += ',';
    tl += std::to_string(t);
  }
  std::printf("Parallel factorization scaling (threads %s, host cores %u)\n%s\n",
              tl.c_str(), std::thread::hardware_concurrency(),
              small ? "scale: SMALL (sanity)" : "scale: default");

  const SymSparse cube_m = make_grid3d(cube, cube, cube);
  const SymSparse lp_m = make_lp_normal_equations(lp);
  const std::string cube_name =
      "CUBE" + std::to_string(cube) + "x" + std::to_string(cube) + "x" +
      std::to_string(cube);
  const std::string lp_name = "LP" + std::to_string(lp.n);

  std::vector<MatrixResult> results;
  for (idx b : {idx{48}, idx{64}}) {
    results.push_back(bench_matrix(cube_name, cube_m, b, threads_list, reps));
    results.push_back(bench_matrix(lp_name, lp_m, b, threads_list, reps));
  }

  write_json(json_path, results);
  return 0;
}
