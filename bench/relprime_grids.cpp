// Reproduces §4.2's second alternative: cyclic mapping on a processor grid
// with RELATIVELY PRIME dimensions. Dropping one processor (63 = 7x9 instead
// of 64 = 8x8; 99 = 9x11 instead of 100 = 10x10) makes the cyclic row and
// column maps scatter the block diagonal over the whole machine, removing
// diagonal imbalance with no remapping at all.
//
// Paper: 17% / 18% mean improvement on 63 / 99 processors over cyclic on
// 64 / 100 — somewhat below the remapping heuristic's 20% / 24%.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Relatively-prime grids (S4.2): cyclic on P-1 vs cyclic and heuristic on P\n");
  bench::print_scale_banner(scale);

  for (idx procs : {64, 100}) {
    const idx rp = procs - 1;
    std::printf("P = %d (grid %dx%d) vs P-1 = %d (grid %dx%d, relatively prime: %s)\n",
                procs, make_grid(procs).rows, make_grid(procs).cols, rp,
                make_grid(rp).rows, make_grid(rp).cols,
                relatively_prime_dims(make_grid(rp)) ? "yes" : "no");
    Table t({"Matrix", "cyclic P", "cyclic P-1", "impr.", "heuristic P", "impr.",
             "diag bal. P", "diag bal. P-1"});
    Accumulator rp_impr, heur_impr;
    for (const bench::Prepared& p : bench::prepare_standard_suite(scale)) {
      const ParallelPlan plan_cy = p.chol.plan_parallel(
          procs, RemapHeuristic::kCyclic, RemapHeuristic::kCyclic);
      const ParallelPlan plan_rp = p.chol.plan_parallel(
          rp, RemapHeuristic::kCyclic, RemapHeuristic::kCyclic);
      const ParallelPlan plan_h = p.chol.plan_parallel(
          procs, RemapHeuristic::kIncreasingDepth, RemapHeuristic::kCyclic);
      const double mf_cy = p.chol.simulate(plan_cy).mflops(p.chol.factor_flops_exact());
      const double mf_rp = p.chol.simulate(plan_rp).mflops(p.chol.factor_flops_exact());
      const double mf_h = p.chol.simulate(plan_h).mflops(p.chol.factor_flops_exact());
      t.new_row();
      t.add(p.name);
      t.add(mf_cy, 0);
      t.add(mf_rp, 0);
      t.add_percent(mf_rp / mf_cy - 1.0);
      t.add(mf_h, 0);
      t.add_percent(mf_h / mf_cy - 1.0);
      // Diagonal balance with and without relatively-prime dims (no domains,
      // pure mapping effect).
      t.add(p.chol.plan_parallel(procs, RemapHeuristic::kCyclic,
                                 RemapHeuristic::kCyclic, false)
                .balance.diag,
            2);
      t.add(p.chol.plan_parallel(rp, RemapHeuristic::kCyclic,
                                 RemapHeuristic::kCyclic, false)
                .balance.diag,
            2);
      rp_impr.add(mf_rp / mf_cy - 1.0);
      heur_impr.add(mf_h / mf_cy - 1.0);
    }
    t.print(std::cout);
    std::printf("mean: relatively-prime %.0f%%, heuristic %.0f%% (paper: ~%d%% vs ~%d%%)\n\n",
                rp_impr.mean() * 100.0, heur_impr.mean() * 100.0,
                procs == 64 ? 17 : 18, procs == 64 ? 20 : 24);
  }
  std::printf("Expected shape: relatively-prime grids recover most but not all of\n"
              "the heuristic's gain, using one fewer processor.\n");
  return 0;
}
