// Triangular-solve throughput: seed column-at-a-time scalar sweeps vs the
// multi-RHS panel path vs the DAG-scheduled parallel executor
// (factor/parallel_solve.hpp), on the regular CUBE and irregular LP
// families, across RHS counts 1/4/16/64 and a thread sweep.
//
// "seed"     = one block_solve per RHS column (the pre-panel behavior:
//              scalar forward/backward sweeps, factor walked once per
//              column).
// "panel"    = block_solve_multi: the factor walked once per panel of RHS
//              columns, TRSM/GEMM panel kernels.
// "parallel" = block_solve_multi_parallel at each thread count, reusing one
//              SolveWorkspace; a separately profiled run reports the
//              forward/backward/scatter/idle phase split.
//
// Thread counts default to 1,2,4,8; override with SPC_THREADS=N[,N...].
// Writes BENCH_solve.json to the repo root (override with --json-out=PATH).
// SPC_SMALL=1 shrinks the problems for a sanity pass.
//
// Note on this host: the container is typically pinned to one core, so the
// thread sweep measures scheduling overhead, not true parallel speedup; the
// panel-vs-seed speedup and the 1-thread parallel-vs-panel ratio are the
// meaningful single-core numbers, and the host's core count is recorded in
// the JSON.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cholesky/sparse_cholesky.hpp"
#include "factor/block_solve.hpp"
#include "factor/parallel_solve.hpp"
#include "factor/residual.hpp"
#include "gen/grid_gen.hpp"
#include "gen/lp_gen.hpp"
#include "support/rng.hpp"

#ifndef SPC_REPO_ROOT
#define SPC_REPO_ROOT "."
#endif

namespace {

using namespace spc;

template <typename F>
double median_seconds(F&& fn, int reps) {
  std::vector<double> t(reps);
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    t[r] = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
               .count();
  }
  std::sort(t.begin(), t.end());
  return t[reps / 2];
}

std::vector<int> thread_counts_from_env() {
  std::vector<int> counts;
  if (const char* env = std::getenv("SPC_THREADS")) {
    int v = 0;
    for (const char* p = env;; ++p) {
      if (*p >= '0' && *p <= '9') {
        v = v * 10 + (*p - '0');
      } else {
        if (v > 0) counts.push_back(v);
        v = 0;
        if (*p == '\0') break;
      }
    }
  }
  // The default sweep is host-gated: counts above the hardware thread count
  // are oversubscription noise (an explicit SPC_THREADS list is honored
  // verbatim for deliberate oversubscription runs).
  if (counts.empty()) counts = bench::gated_thread_counts({1, 2, 4, 8});
  return counts;
}

struct ThreadRun {
  int threads;
  double par_s;
  double efficiency;  // t1 / (tP * P) of the parallel path
  SolveProfile::Worker phases;
  i64 steals;
};

struct RhsResult {
  idx nrhs;
  double seed_s;     // per-column scalar sweeps
  double panel_s;    // serial panel path
  double residual;   // of the panel solve
  std::vector<ThreadRun> runs;
};

struct MatrixResult {
  std::string name;
  idx n;
  i64 flops;
  std::vector<RhsResult> rhs;
};

MatrixResult bench_matrix(const std::string& name, const SymSparse& a,
                          const std::vector<idx>& nrhs_list,
                          const std::vector<int>& threads_list, int reps) {
  MatrixResult res;
  res.name = name;
  res.n = a.num_rows();

  SparseCholesky chol = SparseCholesky::analyze(a);
  chol.factorize();
  res.flops = chol.factor_flops_exact();
  const BlockFactor& f = chol.factor();
  const idx n = res.n;

  std::printf("%-10s n=%-7lld factor flops=%.3g\n", name.c_str(),
              static_cast<long long>(n), static_cast<double>(res.flops));

  Rng rng(314159);
  const idx max_nrhs = *std::max_element(nrhs_list.begin(), nrhs_list.end());
  DenseMatrix b_full(n, max_nrhs);
  for (idx c = 0; c < max_nrhs; ++c) {
    for (idx r = 0; r < n; ++r) b_full(r, c) = rng.uniform(-1.0, 1.0);
  }

  SolveWorkspace ws(chol.structure());
  for (idx nrhs : nrhs_list) {
    RhsResult rr{};
    rr.nrhs = nrhs;
    DenseMatrix b(n, nrhs);
    for (idx c = 0; c < nrhs; ++c) {
      const double* src = b_full.col(c);
      std::copy(src, src + n, b.col(c));
    }

    DenseMatrix x = b;
    rr.seed_s = median_seconds(
        [&] {
          for (idx c = 0; c < nrhs; ++c) {
            std::vector<double> col(static_cast<std::size_t>(n));
            std::copy(b.col(c), b.col(c) + n, col.begin());
            col = block_solve(f, col);
            std::copy(col.begin(), col.end(), x.col(c));
          }
        },
        reps);

    // Panel and 1-thread parallel execute the identical kernel sequence, so
    // their ratio is the executor's pure overhead. Interleave the timed reps
    // so host drift (this container shares cores with other jobs) hits both
    // paths equally instead of biasing whichever ran second.
    const auto time_once = [](auto&& fn) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };
    SolveOptions opt1;
    opt1.threads = 1;
    const int pair_reps = 2 * reps + 1;
    std::vector<double> t_panel(pair_reps), t_par1(pair_reps);
    for (int rep = 0; rep < pair_reps; ++rep) {
      t_panel[rep] = time_once([&] {
        x = b;
        block_solve_multi(f, x);
      });
      t_par1[rep] = time_once([&] {
        x = b;
        block_solve_multi_parallel(f, x, opt1, &ws);
      });
    }
    std::sort(t_panel.begin(), t_panel.end());
    std::sort(t_par1.begin(), t_par1.end());
    rr.panel_s = t_panel[pair_reps / 2];
    const double par_1t = t_par1[pair_reps / 2];
    // Residual checked after the thread sweep: the sparse multiply would
    // otherwise evict the factor from cache mid-measurement.
    x = b;
    block_solve_multi(f, x);
    const DenseMatrix x_panel = x;

    std::printf("  nrhs=%-3lld seed %.4fs  panel %.4fs  speedup %.2fx\n",
                static_cast<long long>(nrhs), rr.seed_s, rr.panel_s,
                rr.seed_s / rr.panel_s);

    for (int threads : threads_list) {
      ThreadRun run{};
      run.threads = threads;
      SolveOptions opt;
      opt.threads = threads;
      run.par_s = threads == 1 ? par_1t
                               : median_seconds(
                                     [&] {
                                       x = b;
                                       block_solve_multi_parallel(f, x, opt,
                                                                  &ws);
                                     },
                                     reps);
      // One profiled run for the phase split (timer overhead kept out of
      // the timings above).
      SolveProfile prof;
      opt.profile = &prof;
      x = b;
      block_solve_multi_parallel(f, x, opt, &ws);
      run.phases = prof.total();
      run.steals = prof.steals;
      run.efficiency =
          (par_1t > 0 && run.par_s > 0) ? par_1t / (run.par_s * threads) : 0.0;
      std::printf(
          "    threads=%d  par %.4fs  eff %.2f  [fwd %.4fs bwd %.4fs "
          "scatter %.4fs idle %.4fs steals %lld]\n",
          threads, run.par_s, run.efficiency, run.phases.forward_s,
          run.phases.backward_s, run.phases.scatter_s, run.phases.idle_s,
          static_cast<long long>(run.steals));
      rr.runs.push_back(run);
    }
    rr.residual = solve_residual_multi(chol.permuted_matrix(), x_panel, b);
    std::printf("    residual %.1e\n", rr.residual);
    res.rhs.push_back(rr);
  }
  return res;
}

void write_json(const std::string& path,
                const std::vector<MatrixResult>& results) {
  std::FILE* jf = std::fopen(path.c_str(), "w");
  if (!jf) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(jf, "{\n  \"bench\": \"solve\",\n");
  std::fprintf(jf, "  \"host_hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(jf,
               "  \"seed_impl\": \"block_solve per RHS column (scalar "
               "sweeps, factor walked once per column)\",\n");
  std::fprintf(jf,
               "  \"panel_impl\": \"block_solve_multi (TRSM/GEMM panel "
               "kernels, factor walked once per panel)\",\n");
  std::fprintf(jf,
               "  \"parallel_impl\": \"DAG-scheduled executor on "
               "work-stealing deques, per-worker accumulators\",\n");
  std::fprintf(jf, "  \"matrices\": [\n");
  double log_sum = 0;
  int log_count = 0;
  double ratio_1t_worst = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const MatrixResult& m = results[i];
    std::fprintf(jf,
                 "    {\"name\": \"%s\", \"n\": %lld, \"factor_flops\": "
                 "%lld,\n     \"rhs\": [\n",
                 m.name.c_str(), static_cast<long long>(m.n),
                 static_cast<long long>(m.flops));
    for (std::size_t r = 0; r < m.rhs.size(); ++r) {
      const RhsResult& rr = m.rhs[r];
      const double speedup = rr.panel_s > 0 ? rr.seed_s / rr.panel_s : 0.0;
      std::fprintf(jf,
                   "       {\"nrhs\": %lld, \"seed_s\": %.5f, \"panel_s\": "
                   "%.5f, \"speedup_panel_vs_seed\": %.3f, \"residual\": "
                   "%.2e,\n        \"runs\": [\n",
                   static_cast<long long>(rr.nrhs), rr.seed_s, rr.panel_s,
                   speedup, rr.residual);
      for (std::size_t t = 0; t < rr.runs.size(); ++t) {
        const ThreadRun& run = rr.runs[t];
        std::fprintf(
            jf,
            "          {\"threads\": %d, \"par_s\": %.5f, \"efficiency\": "
            "%.3f, \"phases\": {\"forward_s\": %.5f, \"backward_s\": %.5f, "
            "\"scatter_s\": %.5f, \"idle_s\": %.5f, \"steals\": %lld}}%s\n",
            run.threads, run.par_s, run.efficiency, run.phases.forward_s,
            run.phases.backward_s, run.phases.scatter_s, run.phases.idle_s,
            static_cast<long long>(run.steals),
            t + 1 < rr.runs.size() ? "," : "");
        if (run.threads == 1 && rr.panel_s > 0) {
          ratio_1t_worst =
              std::max(ratio_1t_worst, run.par_s / rr.panel_s);
        }
      }
      std::fprintf(jf, "        ]}%s\n", r + 1 < m.rhs.size() ? "," : "");
      if (rr.nrhs == 16 && speedup > 0) {
        log_sum += std::log(speedup);
        ++log_count;
      }
    }
    std::fprintf(jf, "     ]}%s\n", i + 1 < results.size() ? "," : "");
  }
  const double geomean = log_count ? std::exp(log_sum / log_count) : 0.0;
  std::fprintf(jf,
               "  ],\n  \"speedup_nrhs16_geomean\": %.3f,\n"
               "  \"parallel_1t_vs_panel_worst_ratio\": %.3f\n}\n",
               geomean, ratio_1t_worst);
  std::fclose(jf);
  std::printf(
      "wrote %s (panel speedup geomean at nrhs=16: %.2fx; 1-thread parallel "
      "overhead vs panel: %.1f%%)\n",
      path.c_str(), geomean, 100.0 * (ratio_1t_worst - 1.0));
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = std::string(SPC_REPO_ROOT) + "/BENCH_solve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) json_path = argv[i] + 11;
  }
  const bool small = std::getenv("SPC_SMALL") != nullptr;
  const int reps = small ? 1 : 3;
  const idx cube = small ? 12 : 30;
  LpGenOptions lp;
  lp.n = small ? 1500 : 10000;
  lp.mean_overlap = small ? 60 : 200;
  lp.hubs = small ? 20 : 80;
  lp.hub_span = 0.05;

  const std::vector<int> threads_list = thread_counts_from_env();
  std::string tl;
  for (int t : threads_list) {
    if (!tl.empty()) tl += ',';
    tl += std::to_string(t);
  }
  std::printf("Triangular solve throughput (threads %s, host cores %u)\n%s\n",
              tl.c_str(), std::thread::hardware_concurrency(),
              small ? "scale: SMALL (sanity)" : "scale: default");

  const SymSparse cube_m = make_grid3d(cube, cube, cube);
  const SymSparse lp_m = make_lp_normal_equations(lp);
  const std::string cube_name = "CUBE" + std::to_string(cube) + "x" +
                                std::to_string(cube) + "x" +
                                std::to_string(cube);
  const std::string lp_name = "LP" + std::to_string(lp.n);

  const std::vector<idx> nrhs_list = {1, 4, 16, 64};
  std::vector<MatrixResult> results;
  results.push_back(
      bench_matrix(cube_name, cube_m, nrhs_list, threads_list, reps));
  results.push_back(bench_matrix(lp_name, lp_m, nrhs_list, threads_list, reps));

  write_json(json_path, results);
  return 0;
}
