// Supernode amalgamation ablation (paper §2.2: "We use amalgamation in our
// experiments", citing Ashcraft & Grimes): merging small supernodes pads the
// factor with explicit zeros but shrinks the number of blocks and block
// operations, cutting the fixed per-op overhead that dominates for small
// blocks — a net win for the simulated factorization.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "gen/benchmark_suite.hpp"
#include "support/table.hpp"
#include "symbolic/amalgamate.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Amalgamation ablation, P=64, ID/CY mapping, B=48\n");
  bench::print_scale_banner(scale);

  Table t({"Matrix", "supernodes off/on", "block ops off/on", "padding %",
           "MF off", "MF on"});
  for (const char* name : {"GRID150", "GRID300", "CUBE30", "BCSSTK15", "BCSSTK29"}) {
    BenchMatrix bm = make_bench_matrix(name, scale);
    const std::vector<idx> perm = order_bench_matrix(bm);
    double mf[2];
    idx supernodes[2];
    i64 ops[2];
    i64 exact_entries = 0;
    i64 padded_entries = 0;
    for (int amalg = 0; amalg < 2; ++amalg) {
      SolverOptions opt;
      opt.ordering = SolverOptions::Ordering::kNatural;
      opt.amalgamate = amalg == 1;
      SparseCholesky chol = SparseCholesky::analyze_ordered(bm.matrix, perm, opt);
      supernodes[amalg] = chol.symbolic().num_supernodes();
      ops[amalg] = chol.task_graph().total_ops();
      if (amalg == 0) {
        exact_entries = chol.symbolic().total_stored_entries();
      } else {
        padded_entries = chol.symbolic().total_stored_entries();
      }
      const ParallelPlan plan = chol.plan_parallel(
          64, RemapHeuristic::kIncreasingDepth, RemapHeuristic::kCyclic);
      mf[amalg] =
          chol.simulate(plan).mflops(chol.factor_flops_exact());
    }
    t.new_row();
    t.add(bm.name);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%d / %d", supernodes[0], supernodes[1]);
    t.add(std::string(buf));
    std::snprintf(buf, sizeof(buf), "%lld / %lld", static_cast<long long>(ops[0]),
                  static_cast<long long>(ops[1]));
    t.add(std::string(buf));
    t.add_percent(static_cast<double>(padded_entries - exact_entries) /
                  static_cast<double>(exact_entries));
    t.add(mf[0], 0);
    t.add(mf[1], 0);
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: amalgamation merges many tiny supernodes, cuts block\n"
      "ops substantially for a few %% of storage padding, and raises simulated\n"
      "performance — which is why the paper uses it throughout.\n");
  return 0;
}
