// Network topology ablation: the paper's results treat the Paragon's 2-D
// wormhole-routed mesh as a flat network ("These advantages accrue even when
// the underlying machine has some interconnection network whose topology is
// not a grid", §1). This bench enables per-hop mesh routing costs in the
// simulator and shows the results are insensitive to them — per-hop latency
// on wormhole meshes is tens of nanoseconds against 50 us software latency.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Mesh topology ablation, P=196 (14x14 mesh), ID/CY mapping\n");
  bench::print_scale_banner(scale);

  Table t({"Matrix", "flat MF", "mesh 40ns/hop MF", "mesh 1us/hop MF",
           "mesh 50us/hop MF"});
  for (const bench::Prepared& p : bench::prepare_standard_suite(scale)) {
    const ParallelPlan plan = p.chol.plan_parallel(
        196, RemapHeuristic::kIncreasingDepth, RemapHeuristic::kCyclic);
    t.new_row();
    t.add(p.name);
    for (double hop : {-1.0, 40e-9, 1e-6, 50e-6}) {
      CostModel cm;
      if (hop >= 0) {
        cm.mesh_cols = 14;
        cm.per_hop_latency_s = hop;
      }
      const SimResult r = p.chol.simulate(plan, cm);
      t.add(r.mflops(p.chol.factor_flops_exact()), 0);
    }
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: realistic per-hop costs (40ns) are indistinguishable\n"
      "from the flat model; only absurd per-hop latencies (~the full software\n"
      "latency per hop) visibly hurt — topology is not what limits the\n"
      "factorization, as the paper assumes.\n");
  return 0;
}
