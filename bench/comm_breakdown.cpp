// Reproduces the §5 instrumentation claims: on the Paragon, communication
// software costs stay below ~20% of total runtime even at P = 196, and most
// non-compute time is spent IDLE waiting for data, not communicating.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Communication/idle breakdown (S5), heuristic mapping, B=48\n");
  bench::print_scale_banner(scale);

  Table t({"Matrix", "P", "compute %", "comm %", "idle %", "msgs", "MB sent"});
  for (const bench::Prepared& p : bench::prepare_large_suite(scale)) {
    for (idx procs : {100, 196}) {
      const ParallelPlan plan = p.chol.plan_parallel(
          procs, RemapHeuristic::kIncreasingDepth, RemapHeuristic::kCyclic);
      const SimResult r = p.chol.simulate(plan);
      const double denom = static_cast<double>(procs) * r.runtime_s;
      t.new_row();
      t.add(p.name);
      t.add(static_cast<long long>(procs));
      t.add_percent(r.total_compute_s() / denom);
      t.add_percent(r.total_comm_s() / denom);
      t.add_percent(r.total_idle_s() / denom);
      t.add(static_cast<long long>(r.total_msgs()));
      t.add(static_cast<double>(r.total_bytes()) / 1e6, 1);
    }
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape (paper): comm < 20%% of aggregate processor time on\n"
      "all problems even at P=196; idle time dominates the non-compute share.\n");
  return 0;
}
