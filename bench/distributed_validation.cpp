// Protocol validation: runs the distributed-memory fan-out executor (real
// numeric factorization with per-processor data isolation and explicit
// message copies) against the Paragon simulator for the same plans, and
// reports the exact agreement of their communication patterns plus the
// replication overhead the fan-out protocol pays.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "factor/distributed_factor.hpp"
#include "factor/residual.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  // Numeric factorization at full scale takes a long time on one host core;
  // the validation story is scale-independent, so this bench uses the small
  // suite by default (override with SPC_FULL at your leisure).
  const SuiteScale scale =
      suite_scale_from_env() == SuiteScale::kFull ? SuiteScale::kMedium
                                                  : SuiteScale::kSmall;
  std::printf("Distributed executor vs simulator (protocol validation), P=16\n");
  bench::print_scale_banner(scale);

  Table t({"Matrix", "residual", "msgs exec", "msgs sim", "bytes match",
           "aggregates", "peak replication %"});
  for (const bench::Prepared& p : bench::prepare_standard_suite(scale)) {
    const ParallelPlan plan = p.chol.plan_parallel(
        16, RemapHeuristic::kIncreasingDepth, RemapHeuristic::kCyclic);
    const DistributedFactorResult d = distributed_fanout_factorize(
        p.chol.permuted_matrix(), p.chol.structure(), p.chol.task_graph(),
        plan.map, plan.domains);
    const SimResult s = p.chol.simulate(plan);
    t.new_row();
    t.add(p.name);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1e",
                  factor_residual_probe(p.chol.permuted_matrix(), d.factor));
    t.add(std::string(buf));
    t.add(static_cast<long long>(d.messages));
    t.add(static_cast<long long>(s.total_msgs()));
    t.add(d.bytes == s.total_bytes() ? "yes" : "NO");
    t.add(static_cast<long long>(d.aggregates));
    t.add_percent(static_cast<double>(d.peak_received_entries) /
                  static_cast<double>(p.chol.structure().stored_entries()));
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: residuals at machine precision, message and byte\n"
      "counts identical between the executor and the timing simulator, and\n"
      "peak per-processor replication a small fraction of the factor.\n");
  return 0;
}
