// Reproduces Table 4: mean improvement in overall balance over the ten
// benchmark matrices for every (row heuristic x column heuristic) pair,
// P = 64 and 100, B = 48, relative to the cyclic/cyclic mapping.
//
// Paper (P=64):                    Paper (P=100):
//        CY  DW  IN  DN  ID              CY  DW  IN  DN  ID
//   CY   0% 18% 17% 21% 17%         CY   0% 19% 23% 22% 21%
//   DW  37% 34% 41% 47% 42%         DW  39% 38% 56% 52% 50%
//   IN  19% 18% 21% 20% 24%         IN  20% 24% 24% 31% 21%
//   DN  39% 37% 43% 43% 47%         DN  41% 36% 50% 50% 49%
//   ID  39% 34% 45% 47% 43%         ID  40% 37% 53% 54% 49%
// Expected shape: row remapping matters more than column remapping; any
// non-cyclic row heuristic except IN gives ~35-55% balance improvement.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Table 4: mean overall-balance improvement vs cyclic (B=48)\n");
  bench::print_scale_banner(scale);

  const std::vector<bench::Prepared> suite = bench::prepare_standard_suite(scale);
  for (idx procs : {64, 100}) {
    std::printf("P = %d\n", procs);
    // Baseline balances per matrix.
    std::vector<double> base;
    for (const bench::Prepared& p : suite) {
      base.push_back(p.chol
                         .plan_parallel(procs, RemapHeuristic::kCyclic,
                                        RemapHeuristic::kCyclic, false)
                         .balance.overall);
    }
    Table t({"Row \\ Col", "CY", "DW", "IN", "DN", "ID"});
    for (RemapHeuristic row_h : kAllHeuristics) {
      t.new_row();
      t.add(heuristic_long_name(row_h));
      for (RemapHeuristic col_h : kAllHeuristics) {
        Accumulator improvement;
        for (std::size_t m = 0; m < suite.size(); ++m) {
          const double b =
              suite[m].chol.plan_parallel(procs, row_h, col_h, false).balance.overall;
          improvement.add(b / base[m] - 1.0);
        }
        t.add_percent(improvement.mean());
      }
    }
    t.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
