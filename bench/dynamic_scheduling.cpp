// Explores the paper's §5 future-work hypothesis: "It is possible that
// low-priority block operations delay higher priority block operations ...
// We hope to investigate the use of dynamic scheduling techniques that are
// more sensitive to some measures of priority of tasks than is the purely
// 'data-driven' approach used in the block fan-out method."
//
// This bench compares the data-driven (FIFO) schedule against a priority
// schedule that runs operations gating the earliest block columns first,
// on the heuristic (ID rows / CY cols) mapping.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Dynamic scheduling ablation (S5 future work), B=48\n");
  bench::print_scale_banner(scale);

  for (idx procs : {64, 100}) {
    std::printf("P = %d\n", procs);
    Table t({"Matrix", "data-driven MF", "priority MF", "impr.",
             "data-driven idle %", "priority idle %"});
    Accumulator impr;
    for (const bench::Prepared& p : bench::prepare_standard_suite(scale)) {
      const ParallelPlan plan = p.chol.plan_parallel(
          procs, RemapHeuristic::kIncreasingDepth, RemapHeuristic::kCyclic);
      const SimResult fifo =
          p.chol.simulate(plan, CostModel{}, SchedulingPolicy::kDataDriven);
      const SimResult prio =
          p.chol.simulate(plan, CostModel{}, SchedulingPolicy::kPriority);
      const double mf_f = fifo.mflops(p.chol.factor_flops_exact());
      const double mf_p = prio.mflops(p.chol.factor_flops_exact());
      t.new_row();
      t.add(p.name);
      t.add(mf_f, 0);
      t.add(mf_p, 0);
      t.add_percent(mf_p / mf_f - 1.0);
      t.add_percent(fifo.total_idle_s() / (procs * fifo.runtime_s));
      t.add_percent(prio.total_idle_s() / (procs * prio.runtime_s));
      impr.add(mf_p / mf_f - 1.0);
    }
    t.print(std::cout);
    std::printf("mean improvement %.0f%%\n\n", impr.mean() * 100.0);
  }
  std::printf(
      "Expected shape: priority scheduling recovers part of the idle time the\n"
      "paper attributes to scheduling, confirming its §5 hypothesis.\n");
  return 0;
}
