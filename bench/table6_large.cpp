// Reproduces Table 6: the larger benchmark matrices.
//
// Paper values (full scale):
//   DENSE4096   4,096  8,386,560  22,915M
//   CUBE40     64,000 21,408,189  23,084M
//   COPTER2    55,476 13,501,253  11,377M
//   10FLEET    11,222  4,782,460   7,450M
// (COPTER2 and 10FLEET are synthetic stand-ins here; see DESIGN.md §2.)
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Table 6: large benchmark matrices\n");
  bench::print_scale_banner(scale);

  Table t({"Name", "Equations", "NZ in L", "Ops to factor (M)", "Supernodes",
           "Block cols (B=48)"});
  for (const char* name : {"DENSE4096", "CUBE40", "COPTER2", "10FLEET"}) {
    const bench::Prepared p = bench::prepare(make_bench_matrix(name, scale));
    t.new_row();
    t.add(p.name);
    t.add(static_cast<long long>(p.a.num_rows()));
    t.add(static_cast<long long>(p.chol.factor_nnz_exact()));
    t.add(static_cast<double>(p.chol.factor_flops_exact()) / 1e6, 1);
    t.add(static_cast<long long>(p.chol.symbolic().num_supernodes()));
    t.add(static_cast<long long>(p.chol.structure().num_block_cols()));
  }
  t.print(std::cout);
  return 0;
}
