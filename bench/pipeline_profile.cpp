// Machine utilization profile (§5's idle-time story, made visible): ASCII
// timelines of per-processor busy fractions for the cyclic and remapped
// mappings on one matrix. The cyclic run shows long ragged idle tails —
// overloaded diagonal/high-row processors finish late while the rest wait;
// remapping squares the profile up.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sim/trace.hpp"

int main(int argc, char** argv) {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  const char* name = argc > 1 ? argv[1] : "CUBE30";
  const idx procs = 64;
  std::printf("Utilization profiles, %s, P=%d, B=48\n", name, procs);
  bench::print_scale_banner(scale);

  const bench::Prepared p = bench::prepare(make_bench_matrix(name, scale));
  for (const auto row_h : {RemapHeuristic::kCyclic, RemapHeuristic::kIncreasingDepth}) {
    const ParallelPlan plan =
        p.chol.plan_parallel(procs, row_h, RemapHeuristic::kCyclic);
    SimTrace trace;
    const SimResult r = p.chol.simulate(plan, CostModel{},
                                        SchedulingPolicy::kDataDriven, &trace);
    std::printf("\n%s rows / cyclic columns: %.0f Mflops, efficiency %.2f\n",
                heuristic_long_name(row_h).c_str(),
                r.mflops(p.chol.factor_flops_exact()), r.efficiency());
    trace.print_timeline(std::cout, procs, r.runtime_s, 64, 12);
  }
  std::printf(
      "\nExpected shape: both profiles drain toward the end (the elimination\n"
      "tree narrows), but the cyclic run's rows go idle earlier and more\n"
      "unevenly — the load imbalance the paper's heuristics remove.\n");
  return 0;
}
