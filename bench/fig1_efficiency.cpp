// Reproduces Figure 1: parallel efficiency and overall balance for the block
// fan-out method under the 2-D cyclic mapping, P = 64 and 100, B = 48.
//
// Paper (full scale): efficiencies 16%-58%, overall balance 27%-68%, balance
// always an upper bound on efficiency, both generally low — the paper's
// motivation for remapping.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Figure 1: efficiency and overall balance, cyclic mapping (B=48)\n");
  bench::print_scale_banner(scale);

  Table t({"Matrix", "P=64 balance", "P=64 efficiency", "P=100 balance",
           "P=100 efficiency"});
  for (const bench::Prepared& p : bench::prepare_standard_suite(scale)) {
    t.new_row();
    t.add(p.name);
    for (idx procs : {64, 100}) {
      const ParallelPlan plan = p.chol.plan_parallel(
          procs, RemapHeuristic::kCyclic, RemapHeuristic::kCyclic);
      const SimResult r = p.chol.simulate(plan);
      t.add(plan.balance.overall, 2);
      t.add(r.efficiency(), 2);
    }
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape (paper): balance bounds efficiency from above;\n"
      "both low (paper: balance 0.27-0.68, efficiency 0.16-0.58).\n");
  return 0;
}
