// Reproduces Table 3: row/column/diagonal/overall balance for BCSSTK31 on
// P = 64 (B = 48) with each remapping heuristic applied to BOTH the rows and
// the columns.
//
// Paper values (full-scale BCSSTK31):
//   Heuristic    Row   Col   Diag  Overall
//   Cyclic       0.75  0.95  0.73  0.54
//   Decr. Work   0.99  0.99  0.92  0.76
//   Inc. Number  0.83  0.96  0.90  0.72
//   Decr. Number 0.99  0.98  0.93  0.81
//   Inc. Depth   0.99  0.99  0.96  0.81
// Expected shape: every heuristic removes the diagonal imbalance; DW/DN/ID
// give near-perfect row/column balance; IN is the weakest remapping but
// still far better than cyclic.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Table 3: balance per heuristic, BCSSTK31 stand-in (P=64, B=48)\n");
  bench::print_scale_banner(scale);

  bench::Prepared p = bench::prepare(make_bench_matrix("BCSSTK31", scale));
  Table t({"Heuristic", "Row bal.", "Col bal.", "Diag bal.", "Overall bal."});
  for (RemapHeuristic h : kAllHeuristics) {
    const ParallelPlan plan =
        p.chol.plan_parallel(64, h, h, /*use_domains=*/false);
    t.new_row();
    t.add(heuristic_long_name(h));
    t.add(plan.balance.row, 2);
    t.add(plan.balance.col, 2);
    t.add(plan.balance.diag, 2);
    t.add(plan.balance.overall, 2);
  }
  t.print(std::cout);
  return 0;
}
