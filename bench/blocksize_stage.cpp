// Reproduces the paper's §5 stage-varying block size NEGATIVE result:
// "Intuitively, it would appear that the factorization computation can
// tolerate large blocks towards the beginning of the factorization ...
// We discovered that this intuition is actually incorrect. Varying the block
// size between the early stages of the computation and the later ones has no
// effect on load imbalance; and it reduces the amount of parallelism."
//
// We compare a fixed B=48 partition against depth-varying partitions
// (large blocks at the bottom of the elimination tree, small at the top, and
// the reverse) on balance, critical path, and simulated performance.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "blocks/partition.hpp"
#include "mapping/balance.hpp"
#include "mapping/heuristics.hpp"
#include "sim/critical_path.hpp"
#include "sim/fanout_sim.hpp"
#include "support/table.hpp"

namespace {

struct Variant {
  const char* name;
  spc::idx bottom, top;  // block size at deepest supernodes / at the roots
};

}  // namespace

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Stage-varying block size (S5 negative result), P=64, ID/CY map\n");
  bench::print_scale_banner(scale);

  const Variant variants[] = {
      {"fixed B=48", 48, 48},
      {"fixed B=24", 24, 24},
      {"96 early -> 24 late", 96, 24},
      {"24 early -> 96 late", 24, 96},
  };
  for (const char* name : {"GRID300", "CUBE30"}) {
    std::printf("%s\n", name);
    const bench::Prepared base = bench::prepare(make_bench_matrix(name, scale));
    const SymbolicFactor& sf = base.chol.symbolic();
    Table t({"partition", "block cols", "overall bal.", "t_cp (s)", "MF (P=64)"});
    for (const Variant& v : variants) {
      const std::vector<idx> sizes = block_sizes_by_depth(sf.sn_parent, v.bottom, v.top);
      BlockPartition part =
          v.bottom == v.top ? make_block_partition(sf.sn, v.bottom)
                            : make_block_partition_variable(sf.sn, sizes);
      const BlockStructure bs = build_block_structure(sf, std::move(part));
      const TaskGraph tg = build_task_graph(bs);
      const idx procs = 64;
      const DomainDecomposition dom = find_domains(sf, bs, tg, procs);
      const RootWork rw = compute_root_work(tg, bs, dom, procs);
      const std::vector<idx> depth = block_depths(bs, base.chol.etree_parent());
      const BlockMap map =
          make_heuristic_map(make_grid(procs), RemapHeuristic::kIncreasingDepth,
                             RemapHeuristic::kCyclic, rw, depth);
      const BalanceStats bal = compute_balance(rw, map);
      const SimResult r = simulate_fanout(bs, tg, map, dom);
      const CriticalPathResult cp = critical_path(bs, tg);
      t.new_row();
      t.add(v.name);
      t.add(static_cast<long long>(bs.num_block_cols()));
      t.add(bal.overall, 2);
      t.add(cp.critical_path_s, 4);
      t.add(static_cast<double>(base.chol.factor_flops_exact()) / r.runtime_s / 1e6,
            0);
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): stage-varying B offers nothing beyond what the\n"
      "block size near the TOP of the tree already determines — the\n"
      "96->24 scheme tracks fixed B=24 (the top dominates the schedule), and\n"
      "the 24->96 scheme is strictly worse (longer critical path, worse\n"
      "balance). Varying by stage is not an independent lever, matching the\n"
      "paper's finding.\n");
  return 0;
}
