// Sequential factorization method comparison — the spirit of the authors'
// earlier study ("An evaluation of left-looking, right-looking, and
// multifrontal approaches to sparse Cholesky factorization", paper ref [13]):
// wall-clock on this host for the three engines over the benchmark suite,
// plus the multifrontal working-set peak and the shared-memory executor
// with several thread counts.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "factor/multifrontal.hpp"
#include "factor/parallel_factor.hpp"
#include "factor/residual.hpp"
#include "support/table.hpp"

namespace {

template <typename F>
double time_seconds(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  using namespace spc;
  // Numeric factorization at full paper scale takes minutes per matrix on
  // one host core; this bench always uses the scaled suite unless SPC_FULL
  // is set explicitly.
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Numeric factorization engines (host wall-clock)\n");
  bench::print_scale_banner(scale);

  Table t({"Matrix", "right-look (s)", "left-look (s)", "multifrontal (s)",
           "threads=4 (s)", "mf peak (MB)", "residual"});
  for (const char* name : {"GRID150", "CUBE30", "BCSSTK15", "BCSSTK29"}) {
    const bench::Prepared p = bench::prepare(make_bench_matrix(name, scale));
    const SymSparse& a = p.chol.permuted_matrix();
    const BlockStructure& bs = p.chol.structure();
    BlockFactor f;
    const double t_right = time_seconds([&] { f = block_factorize(a, bs); });
    const double t_left = time_seconds(
        [&] { f = block_factorize_left(a, bs, p.chol.task_graph()); });
    const double t_mf = time_seconds(
        [&] { f = block_factorize_multifrontal(a, bs, p.chol.symbolic()); });
    const double t_par = time_seconds([&] {
      f = block_factorize_parallel(a, bs, p.chol.task_graph(),
                                   ParallelFactorOptions{4});
    });
    t.new_row();
    t.add(p.name);
    t.add(t_right, 3);
    t.add(t_left, 3);
    t.add(t_mf, 3);
    t.add(t_par, 3);
    t.add(static_cast<double>(multifrontal_peak_entries(p.chol.symbolic())) * 8 / 1e6,
          1);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1e", factor_residual_probe(a, f));
    t.add(std::string(buf));
  }
  t.print(std::cout);
  std::printf(
      "\nAll engines produce the same factor (see tests); they differ in\n"
      "schedule and working set. The simulator's timing model is calibrated\n"
      "to the paper's Paragon, not to these host timings.\n");
  return 0;
}
