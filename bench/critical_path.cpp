// Reproduces the §5 critical-path analysis: the task-DAG concurrency bound
// shows substantial headroom above achieved performance — for BCSSTK15 on
// P = 100 the paper reports ~50% more performance should be possible, for
// BCSSTK31 ~30% — implicating data-driven scheduling, not a lack of
// parallelism, as the post-remapping bottleneck.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sim/critical_path.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Critical path analysis (S5), P=100, heuristic mapping, B=48\n");
  bench::print_scale_banner(scale);

  Table t({"Matrix", "t_cp (s)", "t_seq (s)", "achieved MF", "CP-bound MF",
           "headroom"});
  for (const bench::Prepared& p : bench::prepare_standard_suite(scale)) {
    const CriticalPathResult cp = critical_path(p.chol.structure(), p.chol.task_graph());
    const ParallelPlan plan = p.chol.plan_parallel(
        100, RemapHeuristic::kIncreasingDepth, RemapHeuristic::kCyclic);
    const SimResult r = p.chol.simulate(plan);
    const double achieved = r.mflops(p.chol.factor_flops_exact());
    const double bound = cp.mflops_bound(p.chol.factor_flops_exact(), 100);
    t.new_row();
    t.add(p.name);
    t.add(cp.critical_path_s, 4);
    t.add(cp.seq_runtime_s, 3);
    t.add(achieved, 0);
    t.add(bound, 0);
    t.add_percent(bound / achieved - 1.0);
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape (paper): the concurrency bound sits well above the\n"
      "achieved rate (e.g. ~50%% headroom for BCSSTK15, ~30%% for BCSSTK31),\n"
      "so want of parallelism does not explain the remaining idle time.\n");
  return 0;
}
