// Reproduces Table 2: row, column, diagonal, and overall balance for the
// 2-D cyclic mapping on P = 64 (B = 48). Balance is computed over the
// 2-D-mapped blocks with domains disabled, isolating the mapping effect the
// paper analyzes.
//
// Paper values (full scale):
//   Matrix      Row   Col   Diag  Overall
//   DENSE1024   0.65  0.95  0.69  0.46
//   DENSE2048   0.80  0.99  0.82  0.67
//   GRID150     0.78  0.86  0.62  0.48
//   GRID300     0.85  0.89  0.71  0.54
//   CUBE30      0.87  0.94  0.77  0.68
//   CUBE35      0.86  0.94  0.80  0.66
//   BCSSTK15    0.70  0.69  0.58  0.38
//   BCSSTK29    0.68  0.75  0.63  0.39
//   BCSSTK31    0.75  0.95  0.73  0.54
//   BCSSTK33    0.76  0.89  0.71  0.53
// Expected shape: diagonal imbalance worst, then row, then column.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Table 2: balance bounds for the 2-D cyclic mapping (P=64, B=48)\n");
  bench::print_scale_banner(scale);

  Table t({"Matrix", "Row bal.", "Col bal.", "Diag bal.", "Overall bal."});
  Accumulator row, col, diag, overall;
  for (const bench::Prepared& p : bench::prepare_standard_suite(scale)) {
    const ParallelPlan plan = p.chol.plan_parallel(
        64, RemapHeuristic::kCyclic, RemapHeuristic::kCyclic, /*use_domains=*/false);
    t.new_row();
    t.add(p.name);
    t.add(plan.balance.row, 2);
    t.add(plan.balance.col, 2);
    t.add(plan.balance.diag, 2);
    t.add(plan.balance.overall, 2);
    row.add(plan.balance.row);
    col.add(plan.balance.col);
    diag.add(plan.balance.diag);
    overall.add(plan.balance.overall);
  }
  t.print(std::cout);
  std::printf(
      "\nmeans: row %.2f, col %.2f, diag %.2f, overall %.2f\n"
      "Expected shape (paper): diag < row < col, overall lowest\n"
      "(paper means: row 0.77, col 0.89, diag 0.71, overall 0.54).\n",
      row.mean(), col.mean(), diag.mean(), overall.mean());
  return 0;
}
