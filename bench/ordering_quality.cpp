// Ordering quality comparison backing the paper's §3.1 choices: nested
// dissection for regular grid problems ("asymptotically optimal") and
// multiple minimum degree for irregular matrices ("considered the best for
// most irregular sparse matrices with respect to sequential operation count
// and fill"). Natural order and RCM are included as baselines, AMD as the
// modern cheap alternative.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "graph/permutation.hpp"
#include "ordering/geometric_nd.hpp"
#include "ordering/mmd.hpp"
#include "ordering/nested_dissection.hpp"
#include "ordering/rcm.hpp"
#include "support/table.hpp"
#include "symbolic/colcount.hpp"
#include "symbolic/etree.hpp"

namespace {

spc::i64 fill_of(const spc::SymSparse& a, const std::vector<spc::idx>& perm,
                 spc::i64* ops) {
  const spc::SymSparse p = a.permuted(perm);
  const std::vector<spc::i64> counts =
      spc::factor_col_counts(p, spc::elimination_tree(p));
  if (ops != nullptr) *ops = spc::factor_flops(counts);
  return spc::factor_nnz(counts);
}

}  // namespace

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Ordering quality: NZ(L) in thousands / ops in Mflops\n");
  bench::print_scale_banner(scale);

  Table t({"Matrix", "natural", "RCM", "AMD", "MMD", "ND (general)", "paper's choice"});
  for (const char* name : {"GRID150", "CUBE30", "BCSSTK15", "BCSSTK29", "10FLEET"}) {
    const BenchMatrix bm = make_bench_matrix(name, scale);
    const Graph g = bm.matrix.pattern();
    t.new_row();
    t.add(bm.name);
    for (int variant = 0; variant < 5; ++variant) {
      std::vector<idx> perm;
      switch (variant) {
        case 0: perm = identity_permutation(bm.matrix.num_rows()); break;
        case 1: perm = rcm_order(g); break;
        case 2: perm = amd_order(g); break;
        case 3: perm = mmd_order(g); break;
        case 4: perm = nested_dissection_order(g); break;
      }
      i64 ops = 0;
      const i64 nz = fill_of(bm.matrix, perm, &ops);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%lldk / %.0fM", static_cast<long long>(nz / 1000),
                    static_cast<double>(ops) / 1e6);
      t.add(std::string(buf));
    }
    // The ordering the paper prescribes for this matrix class.
    i64 ops = 0;
    const i64 nz = fill_of(bm.matrix, order_bench_matrix(bm), &ops);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%lldk / %.0fM", static_cast<long long>(nz / 1000),
                  static_cast<double>(ops) / 1e6);
    t.add(std::string(buf));
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: fill-reducing orderings (AMD/MMD/ND) beat profile\n"
      "orderings (natural/RCM) by large factors; geometric ND wins on grids;\n"
      "MMD/AMD win or tie on irregular problems.\n");
  return 0;
}
