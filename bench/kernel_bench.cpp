// Microbenchmarks of the dense block kernels (google-benchmark): the
// BFAC / BDIV / BMOD primitives at the block sizes the factorization uses.
// These are OUR kernels' wall-clock rates on the host machine — the
// simulator uses the calibrated Paragon cost model, not these timings (see
// DESIGN.md §2), but the shared-memory executor runs on exactly these
// kernels, so their rates decide real factorization throughput.
//
// Before the interactive google-benchmark run, main() times the seed kernels
// (scalar potrf/trsm, register-blocked GEMM) against the current ones
// (blocked potrf/trsm, packed/tiled GEMM) and writes the comparison to
// BENCH_kernels.json in the repo root (override the path with argv[1] of the
// form --json-out=PATH) — the machine-readable perf trajectory record.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "linalg/kernels.hpp"
#include "support/rng.hpp"

namespace {

using spc::DenseMatrix;
using spc::idx;

DenseMatrix random_spd(idx n, std::uint64_t seed) {
  spc::Rng rng(seed);
  DenseMatrix a(n, n);
  for (idx c = 0; c < n; ++c) {
    for (idx r = 0; r < n; ++r) a(r, c) = rng.uniform(-1.0, 1.0);
    a(c, c) += static_cast<double>(2 * n);
  }
  // Symmetrize the lower triangle (potrf only reads the lower part).
  for (idx c = 0; c < n; ++c) {
    for (idx r = c; r < n; ++r) a(r, c) = (a(r, c) + a(c, r)) / 2;
  }
  return a;
}

DenseMatrix random_matrix(idx rows, idx cols, std::uint64_t seed) {
  spc::Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (idx c = 0; c < cols; ++c) {
    for (idx r = 0; r < rows; ++r) m(r, c) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

void BM_Bfac(benchmark::State& state) {
  const idx k = static_cast<idx>(state.range(0));
  const DenseMatrix a = random_spd(k, 1);
  for (auto _ : state) {
    DenseMatrix l = a;
    spc::potrf_lower(l);
    benchmark::DoNotOptimize(l.data());
  }
  state.counters["Mflops"] = benchmark::Counter(
      static_cast<double>(spc::flops_bfac(k)) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Bfac)->Arg(16)->Arg(48)->Arg(96);

void BM_BfacUnblocked(benchmark::State& state) {
  const idx k = static_cast<idx>(state.range(0));
  const DenseMatrix a = random_spd(k, 1);
  for (auto _ : state) {
    DenseMatrix l = a;
    spc::potrf_lower_unblocked(l);
    benchmark::DoNotOptimize(l.data());
  }
  state.counters["Mflops"] = benchmark::Counter(
      static_cast<double>(spc::flops_bfac(k)) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BfacUnblocked)->Arg(48)->Arg(96);

void BM_Bdiv(benchmark::State& state) {
  const idx k = static_cast<idx>(state.range(0));
  const idx m = 4 * k;
  DenseMatrix l = random_spd(k, 2);
  spc::potrf_lower(l);
  const DenseMatrix b0 = random_matrix(m, k, 3);
  for (auto _ : state) {
    DenseMatrix b = b0;
    spc::trsm_right_ltrans(l, b);
    benchmark::DoNotOptimize(b.data());
  }
  state.counters["Mflops"] = benchmark::Counter(
      static_cast<double>(spc::flops_bdiv(m, k)) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Bdiv)->Arg(16)->Arg(48)->Arg(96);

void BM_BdivUnblocked(benchmark::State& state) {
  const idx k = static_cast<idx>(state.range(0));
  const idx m = 4 * k;
  DenseMatrix l = random_spd(k, 2);
  spc::potrf_lower(l);
  const DenseMatrix b0 = random_matrix(m, k, 3);
  for (auto _ : state) {
    DenseMatrix b = b0;
    spc::trsm_right_ltrans_unblocked(l, b);
    benchmark::DoNotOptimize(b.data());
  }
  state.counters["Mflops"] = benchmark::Counter(
      static_cast<double>(spc::flops_bdiv(m, k)) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BdivUnblocked)->Arg(48)->Arg(96);

template <void (*Gemm)(const DenseMatrix&, const DenseMatrix&, DenseMatrix&)>
void BM_BmodKernel(benchmark::State& state) {
  const idx k = static_cast<idx>(state.range(0));
  const idx m = 2 * k, n = 2 * k;
  const DenseMatrix a = random_matrix(m, k, 4);
  const DenseMatrix b = random_matrix(n, k, 5);
  DenseMatrix c = random_matrix(m, n, 6);
  for (auto _ : state) {
    Gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["Mflops"] = benchmark::Counter(
      static_cast<double>(spc::flops_bmod(m, n, k)) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BmodKernel<spc::gemm_nt_minus>)->Name("BM_Bmod")->Arg(16)->Arg(48)->Arg(96);
BENCHMARK(BM_BmodKernel<spc::gemm_nt_minus_naive>)->Name("BM_BmodNaive")->Arg(48)->Arg(96);
BENCHMARK(BM_BmodKernel<spc::gemm_nt_minus_blocked>)->Name("BM_BmodBlocked")->Arg(48)->Arg(96);
BENCHMARK(BM_BmodKernel<spc::gemm_nt_minus_packed>)->Name("BM_BmodPacked")->Arg(48)->Arg(96);

// --- BENCH_kernels.json ------------------------------------------------------

// Best-of-reps wall-clock of `fn` (called `iters` times per rep), in seconds
// per call. Best-of defends against the noisy shared-host clock.
template <class F>
double time_best(F fn, int iters, int reps = 5) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() /
        iters;
    best = std::min(best, dt);
  }
  return best;
}

struct Pair {
  double seed_mflops = 0;
  double new_mflops = 0;
  double speedup() const { return new_mflops / seed_mflops; }
};

Pair bench_bmod(idx b) {
  const idx m = 2 * b, n = 2 * b, k = b;
  const DenseMatrix a = random_matrix(m, k, 4);
  const DenseMatrix bb = random_matrix(n, k, 5);
  DenseMatrix c = random_matrix(m, n, 6);
  const double flops = static_cast<double>(spc::flops_bmod(m, n, k));
  const int iters = std::max(1, static_cast<int>(2e8 / flops));
  Pair p;
  // Seed implementation: the seed dispatch (register-blocked kernel).
  spc::set_gemm_dispatch(spc::GemmDispatch::kSeedBlocked);
  p.seed_mflops = flops / time_best([&] { spc::gemm_nt_minus(a, bb, c); }, iters) / 1e6;
  spc::set_gemm_dispatch(spc::GemmDispatch::kAuto);
  p.new_mflops = flops / time_best([&] { spc::gemm_nt_minus(a, bb, c); }, iters) / 1e6;
  return p;
}

Pair bench_bfac(idx n) {
  const DenseMatrix a = random_spd(n, 1);
  const double flops = static_cast<double>(spc::flops_bfac(n));
  const int iters = std::max(1, static_cast<int>(5e7 / flops));
  Pair p;
  p.seed_mflops = flops /
                  time_best(
                      [&] {
                        DenseMatrix l = a;
                        spc::potrf_lower_unblocked(l);
                      },
                      iters) /
                  1e6;
  p.new_mflops = flops /
                 time_best(
                     [&] {
                       DenseMatrix l = a;
                       spc::potrf_lower(l);
                     },
                     iters) /
                 1e6;
  return p;
}

Pair bench_bdiv(idx k) {
  const idx m = 4 * k;
  DenseMatrix l = random_spd(k, 2);
  spc::potrf_lower(l);
  const DenseMatrix b0 = random_matrix(m, k, 3);
  const double flops = static_cast<double>(spc::flops_bdiv(m, k));
  const int iters = std::max(1, static_cast<int>(5e7 / flops));
  Pair p;
  p.seed_mflops = flops /
                  time_best(
                      [&] {
                        DenseMatrix b = b0;
                        spc::trsm_right_ltrans_unblocked(l, b);
                      },
                      iters) /
                  1e6;
  p.new_mflops = flops /
                 time_best(
                     [&] {
                       DenseMatrix b = b0;
                       spc::trsm_right_ltrans(l, b);
                     },
                     iters) /
                 1e6;
  return p;
}

// fp32 vs fp64 packed GEMM at the factorization's block size, per ISA path:
// the mixed-precision factorization (SolverOptions::Precision::kFp32Refine)
// rides on exactly this ratio.
struct F32Pair {
  spc::KernelIsa isa;
  double fp64_mflops = 0;
  double fp32_mflops = 0;
  double ratio() const { return fp32_mflops / fp64_mflops; }
};

std::vector<F32Pair> bench_f32_gemm(idx b) {
  const idx m = 2 * b, n = 2 * b, k = b;
  const double flops = static_cast<double>(spc::flops_bmod(m, n, k));
  const int iters = std::max(1, static_cast<int>(2e8 / flops));
  std::vector<double> a64(static_cast<std::size_t>(m * k));
  std::vector<double> b64(static_cast<std::size_t>(n * k));
  std::vector<double> c64(static_cast<std::size_t>(m * n));
  spc::Rng rng(7);
  for (double& v : a64) v = rng.uniform(-1.0, 1.0);
  for (double& v : b64) v = rng.uniform(-1.0, 1.0);
  std::vector<float> a32(a64.begin(), a64.end());
  std::vector<float> b32(b64.begin(), b64.end());
  std::vector<float> c32(static_cast<std::size_t>(m * n));

  const spc::KernelIsa saved = spc::kernel_isa();
  std::vector<F32Pair> out;
  for (const spc::KernelIsa isa :
       {spc::KernelIsa::kScalar, spc::KernelIsa::kAvx2,
        spc::KernelIsa::kAvx512}) {
    if (!spc::set_kernel_isa(isa)) continue;
    F32Pair p;
    p.isa = isa;
    p.fp64_mflops =
        flops /
        time_best(
            [&] {
              spc::gemm_nt_neg_raw(m, n, k, a64.data(), m, b64.data(), n,
                                   c64.data(), m);
            },
            iters) /
        1e6;
    p.fp32_mflops =
        flops /
        time_best(
            [&] {
              spc::gemm_nt_neg_raw_f32(m, n, k, a32.data(), m, b32.data(), n,
                                       c32.data(), m);
            },
            iters) /
        1e6;
    out.push_back(p);
  }
  spc::set_kernel_isa(saved);
  return out;
}

#ifndef SPC_REPO_ROOT
#define SPC_REPO_ROOT "."
#endif

void write_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"kernels\",\n  \"units\": \"Mflop/s\",\n");
  std::fprintf(f,
               "  \"seed_impl\": \"scalar potrf/trsm + 2x4 register-blocked "
               "gemm\",\n  \"new_impl\": \"blocked potrf/trsm + packed/tiled "
               "gemm (runtime scalar/AVX2/AVX-512 micro-kernels)\",\n");
  std::fprintf(f, "  \"isa\": \"%s\",\n",
               spc::kernel_isa_name(spc::kernel_isa()));
  std::fprintf(f, "  \"affinity\": \"n/a\",\n");
  const char* fmt =
      "    {\"op\": \"%s\", \"B\": %d, \"m\": %d, \"n\": %d, \"k\": %d, "
      "\"seed_mflops\": %.1f, \"new_mflops\": %.1f, \"speedup\": %.3f}%s\n";
  std::fprintf(f, "  \"results\": [\n");
  for (idx b : {idx{48}, idx{96}}) {
    const Pair bmod = bench_bmod(b);
    std::fprintf(f, fmt, "bmod", b, 2 * b, 2 * b, b, bmod.seed_mflops,
                 bmod.new_mflops, bmod.speedup(), ",");
    std::printf("bmod  B=%-3d  seed %8.1f  new %8.1f  speedup %.2fx\n", b,
                bmod.seed_mflops, bmod.new_mflops, bmod.speedup());
    const Pair bfac = bench_bfac(b);
    std::fprintf(f, fmt, "bfac", b, b, b, b, bfac.seed_mflops, bfac.new_mflops,
                 bfac.speedup(), ",");
    std::printf("bfac  B=%-3d  seed %8.1f  new %8.1f  speedup %.2fx\n", b,
                bfac.seed_mflops, bfac.new_mflops, bfac.speedup());
    const Pair bdiv = bench_bdiv(b);
    std::fprintf(f, fmt, "bdiv", b, 4 * b, b, b, bdiv.seed_mflops,
                 bdiv.new_mflops, bdiv.speedup(), b == 96 ? "" : ",");
    std::printf("bdiv  B=%-3d  seed %8.1f  new %8.1f  speedup %.2fx\n", b,
                bdiv.seed_mflops, bdiv.new_mflops, bdiv.speedup());
  }
  std::fprintf(f, "  ],\n  \"fp32_gemm\": [\n");
  const std::vector<F32Pair> f32 = bench_f32_gemm(48);
  for (std::size_t i = 0; i < f32.size(); ++i) {
    const F32Pair& p = f32[i];
    std::fprintf(f,
                 "    {\"op\": \"gemm\", \"B\": 48, \"isa\": \"%s\", "
                 "\"fp64_mflops\": %.1f, \"fp32_mflops\": %.1f, "
                 "\"fp32_over_fp64\": %.3f}%s\n",
                 spc::kernel_isa_name(p.isa), p.fp64_mflops, p.fp32_mflops,
                 p.ratio(), i + 1 < f32.size() ? "," : "");
    std::printf("gemm  B=48   %-6s fp64 %8.1f  fp32 %8.1f  ratio %.2fx\n",
                spc::kernel_isa_name(p.isa), p.fp64_mflops, p.fp32_mflops,
                p.ratio());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = std::string(SPC_REPO_ROOT) + "/BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) json_path = argv[i] + 11;
  }
  write_json(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
