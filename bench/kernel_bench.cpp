// Microbenchmarks of the dense block kernels (google-benchmark): the
// BFAC / BDIV / BMOD primitives at the block sizes the factorization uses.
// These are OUR kernels' wall-clock rates on the host machine, reported for
// completeness — the simulator uses the calibrated Paragon cost model, not
// these timings (see DESIGN.md §2).
#include <benchmark/benchmark.h>

#include "linalg/dense_matrix.hpp"
#include "linalg/kernels.hpp"
#include "support/rng.hpp"

namespace {

using spc::DenseMatrix;
using spc::idx;

DenseMatrix random_spd(idx n, std::uint64_t seed) {
  spc::Rng rng(seed);
  DenseMatrix a(n, n);
  for (idx c = 0; c < n; ++c) {
    for (idx r = 0; r < n; ++r) a(r, c) = rng.uniform(-1.0, 1.0);
    a(c, c) += static_cast<double>(2 * n);
  }
  // Symmetrize the lower triangle (potrf only reads the lower part).
  for (idx c = 0; c < n; ++c) {
    for (idx r = c; r < n; ++r) a(r, c) = (a(r, c) + a(c, r)) / 2;
  }
  return a;
}

DenseMatrix random_matrix(idx rows, idx cols, std::uint64_t seed) {
  spc::Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (idx c = 0; c < cols; ++c) {
    for (idx r = 0; r < rows; ++r) m(r, c) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

void BM_Bfac(benchmark::State& state) {
  const idx k = static_cast<idx>(state.range(0));
  const DenseMatrix a = random_spd(k, 1);
  for (auto _ : state) {
    DenseMatrix l = a;
    spc::potrf_lower(l);
    benchmark::DoNotOptimize(l.data());
  }
  state.counters["Mflops"] = benchmark::Counter(
      static_cast<double>(spc::flops_bfac(k)) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Bfac)->Arg(16)->Arg(48)->Arg(96);

void BM_Bdiv(benchmark::State& state) {
  const idx k = static_cast<idx>(state.range(0));
  const idx m = 4 * k;
  DenseMatrix l = random_spd(k, 2);
  spc::potrf_lower(l);
  const DenseMatrix b0 = random_matrix(m, k, 3);
  for (auto _ : state) {
    DenseMatrix b = b0;
    spc::trsm_right_ltrans(l, b);
    benchmark::DoNotOptimize(b.data());
  }
  state.counters["Mflops"] = benchmark::Counter(
      static_cast<double>(spc::flops_bdiv(m, k)) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Bdiv)->Arg(16)->Arg(48)->Arg(96);

void BM_Bmod(benchmark::State& state) {
  const idx k = static_cast<idx>(state.range(0));
  const idx m = 2 * k, n = 2 * k;
  const DenseMatrix a = random_matrix(m, k, 4);
  const DenseMatrix b = random_matrix(n, k, 5);
  DenseMatrix c = random_matrix(m, n, 6);
  for (auto _ : state) {
    spc::gemm_nt_minus(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["Mflops"] = benchmark::Counter(
      static_cast<double>(spc::flops_bmod(m, n, k)) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Bmod)->Arg(16)->Arg(48)->Arg(96);

void BM_BmodNaive(benchmark::State& state) {
  const idx k = static_cast<idx>(state.range(0));
  const idx m = 2 * k, n = 2 * k;
  const DenseMatrix a = random_matrix(m, k, 4);
  const DenseMatrix b = random_matrix(n, k, 5);
  DenseMatrix c = random_matrix(m, n, 6);
  for (auto _ : state) {
    spc::gemm_nt_minus_naive(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["Mflops"] = benchmark::Counter(
      static_cast<double>(spc::flops_bmod(m, n, k)) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BmodNaive)->Arg(48)->Arg(96);

void BM_BmodBlocked(benchmark::State& state) {
  const idx k = static_cast<idx>(state.range(0));
  const idx m = 2 * k, n = 2 * k;
  const DenseMatrix a = random_matrix(m, k, 4);
  const DenseMatrix b = random_matrix(n, k, 5);
  DenseMatrix c = random_matrix(m, n, 6);
  for (auto _ : state) {
    spc::gemm_nt_minus_blocked(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["Mflops"] = benchmark::Counter(
      static_cast<double>(spc::flops_bmod(m, n, k)) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BmodBlocked)->Arg(48)->Arg(96);

}  // namespace

BENCHMARK_MAIN();
