// End-to-end 1-D vs 2-D mapping comparison (the paper's §1 motivation):
// simulate the block factorization with (a) a 1-D block-column mapping
// (grid 1 x P: every block of a column on the column's owner) and (b) the
// paper's 2-D mapping (cyclic columns, remapped rows), as P grows.
//
// Note: this keeps BLOCK granularity for both sides, which already mutes the
// 1-D method's communication blow-up (the element-column-granularity volume
// comparison is bench/scaling_comm). The 2-D advantage here comes from
// concurrency — block rows of a column factor in parallel — and grows with
// P and with problem density (3-D/dense problems show it earliest).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("1-D block-column vs 2-D block mapping (cyclic), end-to-end sim\n");
  bench::print_scale_banner(scale);

  for (const char* name : {"GRID300", "CUBE30"}) {
    const bench::Prepared p = bench::prepare(make_bench_matrix(name, scale));
    std::printf("%s\n", name);
    Table t({"P", "1-D MF", "2-D MF", "2D/1D", "1-D comm %", "2-D comm %",
             "1-D MB", "2-D MB"});
    for (idx procs : {4, 16, 64}) {
      // 1-D: a 1 x P grid makes owner(I,J) depend on J only.
      BlockMap map1d = cyclic_map(ProcessorGrid{1, procs},
                                  p.chol.structure().num_block_cols());
      const ParallelPlan plan1d = p.chol.plan_from_map(std::move(map1d),
                                                       /*use_domains=*/false);
      // 2-D: the paper's method — cyclic columns, ID-remapped rows.
      const ParallelPlan plan2d = p.chol.plan_parallel(
          procs, RemapHeuristic::kIncreasingDepth, RemapHeuristic::kCyclic,
          /*use_domains=*/false);
      const SimResult r1 = p.chol.simulate(plan1d);
      const SimResult r2 = p.chol.simulate(plan2d);
      const double mf1 = r1.mflops(p.chol.factor_flops_exact());
      const double mf2 = r2.mflops(p.chol.factor_flops_exact());
      t.new_row();
      t.add(static_cast<long long>(procs));
      t.add(mf1, 0);
      t.add(mf2, 0);
      t.add(mf2 / mf1, 2);
      t.add_percent(r1.comm_fraction());
      t.add_percent(r2.comm_fraction());
      t.add(static_cast<double>(r1.total_bytes()) / 1e6, 1);
      t.add(static_cast<double>(r2.total_bytes()) / 1e6, 1);
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape: the 2-D advantage grows with P, earliest on the denser\n"
      "3-D problem (the paper's O(sqrt P) vs O(P) communication and O(k) vs\n"
      "O(k^2) critical path arguments; see scaling_comm for the volume side).\n");
  return 0;
}
