// Reproduces Table 5: mean improvement in simulated parallel performance
// (1 / runtime) over the ten benchmark matrices for every (row x column)
// heuristic pair, P = 64 and 100, B = 48, relative to cyclic/cyclic.
// Domains are enabled — this is the full factorization code configuration.
//
// Paper (P=64):                    Paper (P=100):
//        CY  DW  IN  DN  ID              CY  DW  IN  DN  ID
//   CY   0% 13% 14% 15% 17%         CY   0% 12% 19% 19% 20%
//   DW  21% 14% 18% 21% 19%         DW  20% 16% 21% 19% 20%
//   IN  16% 13% 13% 15% 15%         IN  20% 17% 11% 19% 19%
//   DN  18% 14% 18% 16% 18%         DN  23% 15% 19% 15% 20%
//   ID  20% 14% 19% 19% 18%         ID  24% 16% 20% 21% 18%
// Expected shape: ~15-25% gains, much smaller than the balance gains of
// Table 4 (balance stops being the binding constraint), with the specific
// heuristic mattering little as long as SOME remapping is done.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace spc;
  const SuiteScale scale = suite_scale_from_env();
  std::printf("Table 5: mean simulated-performance improvement vs cyclic (B=48)\n");
  bench::print_scale_banner(scale);

  const std::vector<bench::Prepared> suite = bench::prepare_standard_suite(scale);
  for (idx procs : {64, 100}) {
    std::printf("P = %d\n", procs);
    std::vector<double> base;
    for (const bench::Prepared& p : suite) {
      base.push_back(
          p.chol
              .simulate(p.chol.plan_parallel(procs, RemapHeuristic::kCyclic,
                                             RemapHeuristic::kCyclic))
              .runtime_s);
    }
    Table t({"Row \\ Col", "CY", "DW", "IN", "DN", "ID"});
    for (RemapHeuristic row_h : kAllHeuristics) {
      t.new_row();
      t.add(heuristic_long_name(row_h));
      for (RemapHeuristic col_h : kAllHeuristics) {
        Accumulator improvement;
        for (std::size_t m = 0; m < suite.size(); ++m) {
          const double rt =
              suite[m]
                  .chol.simulate(suite[m].chol.plan_parallel(procs, row_h, col_h))
                  .runtime_s;
          improvement.add(base[m] / rt - 1.0);
        }
        t.add_percent(improvement.mean());
      }
    }
    t.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
